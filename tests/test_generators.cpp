#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace ncb {
namespace {

TEST(Generators, CompleteGraphEdgeCount) {
  const Graph g = complete_graph(10);
  EXPECT_EQ(g.num_edges(), 45u);
  for (ArmId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 9u);
}

TEST(Generators, EmptyGraphHasNoEdges) {
  const Graph g = empty_graph(8);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Generators, StarGraphStructure) {
  const Graph g = star_graph(6);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 5u);
  for (ArmId v = 1; v < 6; ++v) {
    EXPECT_EQ(g.degree(v), 1u);
    EXPECT_TRUE(g.has_edge(0, v));
  }
}

TEST(Generators, PathGraphStructure) {
  const Graph g = path_graph(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
}

TEST(Generators, PathGraphSingleton) {
  const Graph g = path_graph(1);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Generators, CycleGraphStructure) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (ArmId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(5, 0));
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(Generators, GridGraphStructure) {
  const Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // Edge count: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
}

TEST(Generators, DisjointCliquesStructure) {
  const Graph g = disjoint_cliques(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 6u);
  // No cross-clique edge.
  EXPECT_FALSE(g.has_edge(0, 4));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(4, 7));
}

TEST(Generators, ErdosRenyiExtremes) {
  Xoshiro256 rng(1);
  const Graph zero = erdos_renyi(20, 0.0, rng);
  EXPECT_EQ(zero.num_edges(), 0u);
  const Graph one = erdos_renyi(20, 1.0, rng);
  EXPECT_EQ(one.num_edges(), 190u);
  EXPECT_THROW(erdos_renyi(5, 1.5, rng), std::invalid_argument);
}

TEST(Generators, ErdosRenyiDensityNearP) {
  Xoshiro256 rng(7);
  const Graph g = erdos_renyi(100, 0.3, rng);
  const double density =
      static_cast<double>(g.num_edges()) / (100.0 * 99.0 / 2.0);
  EXPECT_NEAR(density, 0.3, 0.04);
}

TEST(Generators, ErdosRenyiDeterministicGivenRngState) {
  Xoshiro256 a(5), b(5);
  const Graph g1 = erdos_renyi(30, 0.4, a);
  const Graph g2 = erdos_renyi(30, 0.4, b);
  EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(Generators, BarabasiAlbertDegreeSum) {
  Xoshiro256 rng(11);
  const Graph g = barabasi_albert(50, 3, rng);
  EXPECT_EQ(g.num_vertices(), 50u);
  // Each of the 47 non-seed vertices adds exactly 3 edges; seed clique has 3.
  EXPECT_EQ(g.num_edges(), 3u + 47u * 3u);
  EXPECT_THROW(barabasi_albert(2, 3, rng), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertMinDegree) {
  Xoshiro256 rng(13);
  const Graph g = barabasi_albert(40, 2, rng);
  for (ArmId v = 0; v < 40; ++v) EXPECT_GE(g.degree(v), 2u);
}

TEST(Generators, WattsStrogatzNoRewireIsRingLattice) {
  Xoshiro256 rng(17);
  const Graph g = watts_strogatz(12, 2, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 24u);
  for (ArmId v = 0; v < 12; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, WattsStrogatzRewirePreservesEdgeCount) {
  Xoshiro256 rng(19);
  const Graph g = watts_strogatz(30, 3, 0.5, rng);
  EXPECT_EQ(g.num_edges(), 90u);
  EXPECT_THROW(watts_strogatz(5, 3, 0.5, rng), std::invalid_argument);
}

TEST(Generators, ErdosRenyiBernoulliPathStillAvailable) {
  // The legacy per-pair loop stays behind the flag for seed-compatibility:
  // same seed + same method → same graph, and the two methods draw from
  // the RNG differently (so they are distinct, equally valid G(n, p)).
  Xoshiro256 a(5), b(5), c(5);
  const Graph bern1 = erdos_renyi(40, 0.3, a, ErSampling::kBernoulli);
  const Graph bern2 = erdos_renyi(40, 0.3, b, ErSampling::kBernoulli);
  EXPECT_EQ(bern1.edges(), bern2.edges());
  const Graph geom = erdos_renyi(40, 0.3, c, ErSampling::kGeometric);
  EXPECT_NE(bern1.edges(), geom.edges());
}

TEST(Generators, ErdosRenyiGeometricExtremes) {
  Xoshiro256 rng(1);
  const Graph zero = erdos_renyi(20, 0.0, rng, ErSampling::kGeometric);
  EXPECT_EQ(zero.num_edges(), 0u);
  const Graph one = erdos_renyi(20, 1.0, rng, ErSampling::kGeometric);
  EXPECT_EQ(one.num_edges(), 190u);
  const Graph single = erdos_renyi(1, 0.5, rng, ErSampling::kGeometric);
  EXPECT_EQ(single.num_edges(), 0u);
  EXPECT_EQ(single.num_vertices(), 1u);
}

TEST(Generators, ErdosRenyiGeometricEdgesAreValidAndUnique) {
  Xoshiro256 rng(23);
  const Graph g = erdos_renyi(60, 0.25, rng, ErSampling::kGeometric);
  std::set<Edge> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.first, e.second);
    EXPECT_LT(static_cast<std::size_t>(e.second), 60u);
    EXPECT_TRUE(seen.insert(e).second) << "duplicate edge";
  }
}

TEST(Generators, ErdosRenyiGeometricSparseLargeK) {
  // The skip sampler is O(E): a K = 5000, p = 0.002 graph draws ~25k
  // geometric skips instead of 12.5M Bernoulli trials. Check the density
  // lands near p (mean edges = p * K(K-1)/2 ≈ 24995, sd ≈ 158).
  Xoshiro256 rng(31);
  const Graph g = erdos_renyi(5000, 0.002, rng, ErSampling::kGeometric);
  const double pairs = 5000.0 * 4999.0 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()) / pairs, 0.002, 0.0002);
}

// Parameterized density sweep: measured ER density tracks p across the grid.
class ErdosRenyiDensity
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ErdosRenyiDensity, TracksP) {
  const auto [p, seed] = GetParam();
  Xoshiro256 rng(seed);
  const std::size_t n = 80;
  const Graph g = erdos_renyi(n, p, rng);
  const double pairs = static_cast<double>(n * (n - 1)) / 2.0;
  const double density = static_cast<double>(g.num_edges()) / pairs;
  EXPECT_NEAR(density, p, 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ErdosRenyiDensity,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace ncb
