#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ncb {
namespace {

Graph paper_fig2_graph() {
  // The paper's Fig. 2 relation graph: path 1-2-3-4, 0-indexed as 0-1-2-3.
  return Graph(4, {{0, 1}, {1, 2}, {2, 3}});
}

TEST(Graph, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (ArmId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.neighbors(v).empty());
    EXPECT_EQ(g.closed_neighborhood(v), ArmSet{v});
  }
}

TEST(Graph, EdgeListConstruction) {
  const Graph g = paper_fig2_graph();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, DuplicateEdgesDeduplicated) {
  Graph g(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, SelfLoopRejected) {
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, OutOfRangeEdgeRejected) {
  EXPECT_THROW(Graph(3, {{0, 3}}), std::out_of_range);
  EXPECT_THROW(Graph(3, {{-1, 0}}), std::out_of_range);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5, {{3, 1}, {3, 0}, {3, 4}, {3, 2}});
  EXPECT_EQ(g.neighbors(3), (ArmSet{0, 1, 2, 4}));
}

TEST(Graph, ClosedNeighborhoodsMatchPaperFig2) {
  // N1={1,2}, N2={1,2,3}, N3={2,3,4}, N4={3,4} — 0-indexed.
  const Graph g = paper_fig2_graph();
  EXPECT_EQ(g.closed_neighborhood(0), (ArmSet{0, 1}));
  EXPECT_EQ(g.closed_neighborhood(1), (ArmSet{0, 1, 2}));
  EXPECT_EQ(g.closed_neighborhood(2), (ArmSet{1, 2, 3}));
  EXPECT_EQ(g.closed_neighborhood(3), (ArmSet{2, 3}));
}

TEST(Graph, BitsetsAgreeWithLists) {
  const Graph g = paper_fig2_graph();
  for (ArmId v = 0; v < 4; ++v) {
    EXPECT_EQ(g.closed_neighborhood_bits(v).to_indices(),
              std::vector<std::int32_t>(g.closed_neighborhood(v).begin(),
                                        g.closed_neighborhood(v).end()));
    for (const ArmId j : g.neighbors(v)) {
      EXPECT_TRUE(g.neighbors_bits(v).test(static_cast<std::size_t>(j)));
    }
    EXPECT_FALSE(g.neighbors_bits(v).test(static_cast<std::size_t>(v)));
  }
}

TEST(Graph, EdgesRoundTrip) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  Graph g(4, edges);
  EXPECT_EQ(g.edges(), edges);
}

TEST(Graph, StrategyNeighborhoodIsUnionOfClosed) {
  const Graph g = paper_fig2_graph();
  // Y({0,2}) = N_0 ∪ N_2 = {0,1} ∪ {1,2,3} = {0,1,2,3}.
  EXPECT_EQ(g.strategy_neighborhood_list({0, 2}), (ArmSet{0, 1, 2, 3}));
  // Y({3}) = {2,3}.
  EXPECT_EQ(g.strategy_neighborhood_list({3}), (ArmSet{2, 3}));
  // Empty strategy → empty set.
  EXPECT_TRUE(g.strategy_neighborhood_list({}).empty());
}

TEST(Graph, IndependentSetCheck) {
  const Graph g = paper_fig2_graph();
  EXPECT_TRUE(g.is_independent_set({0, 2}));
  EXPECT_TRUE(g.is_independent_set({0, 3}));
  EXPECT_TRUE(g.is_independent_set({1, 3}));
  EXPECT_FALSE(g.is_independent_set({0, 1}));
  EXPECT_TRUE(g.is_independent_set({2}));
  EXPECT_TRUE(g.is_independent_set({}));
}

TEST(Graph, CliqueCheck) {
  Graph g(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_TRUE(g.is_clique({0, 1, 2}));
  EXPECT_FALSE(g.is_clique({0, 1, 2, 3}));
  EXPECT_TRUE(g.is_clique({2, 3}));
  EXPECT_TRUE(g.is_clique({1}));
}

TEST(Graph, ComplementProperties) {
  const Graph g = paper_fig2_graph();
  const Graph gc = g.complement();
  EXPECT_EQ(gc.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges() + gc.num_edges(), 6u);  // C(4,2)
  for (ArmId u = 0; u < 4; ++u) {
    for (ArmId v = u + 1; v < 4; ++v) {
      EXPECT_NE(g.has_edge(u, v), gc.has_edge(u, v));
    }
  }
}

TEST(Graph, InducedSubgraphRemapsEdges) {
  const Graph g = paper_fig2_graph();
  ArmSet ids;
  const Graph h = g.induced_subgraph({1, 2, 3}, &ids);
  EXPECT_EQ(ids, (ArmSet{1, 2, 3}));
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.num_edges(), 2u);  // (1,2) and (2,3) survive
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_TRUE(h.has_edge(1, 2));
  EXPECT_FALSE(h.has_edge(0, 2));
}

TEST(Graph, InducedSubgraphNonContiguous) {
  const Graph g = paper_fig2_graph();
  const Graph h = g.induced_subgraph({0, 3});
  EXPECT_EQ(h.num_vertices(), 2u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST(Graph, InducedSubgraphDuplicateRejected) {
  const Graph g = paper_fig2_graph();
  EXPECT_THROW(g.induced_subgraph({1, 1}), std::invalid_argument);
  EXPECT_THROW(g.induced_subgraph({9}), std::out_of_range);
}

TEST(Graph, ToStringMentionsCounts) {
  const auto text = paper_fig2_graph().to_string();
  EXPECT_NE(text.find("V=4"), std::string::npos);
  EXPECT_NE(text.find("E=3"), std::string::npos);
}

TEST(Graph, DegreeMatchesNeighbors) {
  const Graph g = paper_fig2_graph();
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(3), 1u);
}

}  // namespace
}  // namespace ncb
