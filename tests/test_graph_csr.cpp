// CSR layout equivalence suite: the flat compressed-sparse-row graph core
// must expose exactly the adjacency structure a brute-force edge-list
// reference implies, across every generator family and both construction
// paths (deduplicating constructor and from_unique_edges fast path),
// including the K = 0 and K = 1 degenerate graphs.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

/// Brute-force reference adjacency from an edge list: one sorted dedup'd
/// std::set per vertex — deliberately the naive structure the CSR replaced.
std::vector<std::set<ArmId>> reference_adjacency(std::size_t n,
                                                 const std::vector<Edge>& edges) {
  std::vector<std::set<ArmId>> adj(n);
  for (const auto& [a, b] : edges) {
    adj[static_cast<std::size_t>(a)].insert(b);
    adj[static_cast<std::size_t>(b)].insert(a);
  }
  return adj;
}

/// Asserts that `g` matches the reference adjacency on every accessor the
/// CSR serves: neighbors, closed neighborhoods, both bitset rows, degrees,
/// has_edge, and the lexicographic edges() dump.
void expect_matches_reference(const Graph& g,
                              const std::vector<std::set<ArmId>>& ref) {
  ASSERT_EQ(g.num_vertices(), ref.size());
  std::size_t edge_entries = 0;
  std::vector<Edge> ref_edges;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const auto v = static_cast<ArmId>(i);
    const ArmSet expected_open(ref[i].begin(), ref[i].end());
    ArmSet expected_closed = expected_open;
    expected_closed.insert(
        std::lower_bound(expected_closed.begin(), expected_closed.end(), v), v);

    EXPECT_EQ(g.neighbors(v), expected_open) << "vertex " << v;
    EXPECT_EQ(g.closed_neighborhood(v), expected_closed) << "vertex " << v;
    EXPECT_EQ(g.degree(v), expected_open.size()) << "vertex " << v;
    EXPECT_EQ(g.neighbors_bits(v).to_indices(), expected_open)
        << "vertex " << v;
    EXPECT_EQ(g.closed_neighborhood_bits(v).to_indices(), expected_closed)
        << "vertex " << v;

    edge_entries += ref[i].size();
    for (const ArmId j : ref[i]) {
      EXPECT_TRUE(g.has_edge(v, j));
      if (j > v) ref_edges.emplace_back(v, j);
    }
  }
  EXPECT_EQ(g.num_edges(), edge_entries / 2);
  EXPECT_EQ(g.edges(), ref_edges);
}

/// Checks both construction paths against the reference, plus a shuffled
/// + orientation-flipped + duplicated list through the dedup constructor.
void expect_construction_equivalence(std::size_t n,
                                     const std::vector<Edge>& unique_edges) {
  const auto ref = reference_adjacency(n, unique_edges);

  const Graph dedup_path(n, unique_edges);
  expect_matches_reference(dedup_path, ref);

  const Graph fast_path = Graph::from_unique_edges(n, unique_edges);
  expect_matches_reference(fast_path, ref);

  // Abuse the general constructor: reversed orientations, duplicates, and
  // a scrambled order must all collapse to the same graph.
  std::vector<Edge> messy;
  for (const auto& [a, b] : unique_edges) {
    messy.emplace_back(b, a);
    messy.emplace_back(a, b);
    messy.emplace_back(b, a);
  }
  Xoshiro256 rng(99);
  for (std::size_t i = messy.size(); i > 1; --i) {
    std::swap(messy[i - 1], messy[rng.uniform_int(i)]);
  }
  const Graph messy_path(n, messy);
  expect_matches_reference(messy_path, ref);
  EXPECT_EQ(messy_path.num_edges(), unique_edges.size());
}

TEST(GraphCsr, EmptyGraphZeroVertices) {
  const Graph g(0);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.edges().empty());
  EXPECT_TRUE(g.strategy_neighborhood_list({}).empty());
  expect_construction_equivalence(0, {});
}

TEST(GraphCsr, SingleVertex) {
  const Graph g(1);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
  EXPECT_EQ(g.closed_neighborhood(0), ArmSet{0});
  EXPECT_EQ(g.closed_neighborhood_bits(0).to_indices(), ArmSet{0});
  EXPECT_FALSE(g.has_edge(0, 0));
  expect_construction_equivalence(1, {});
}

TEST(GraphCsr, EmptyGraphFamily) {
  for (const std::size_t n : {2u, 7u, 65u}) {
    const Graph g = empty_graph(n);
    expect_matches_reference(g, reference_adjacency(n, {}));
  }
}

TEST(GraphCsr, CompleteGraphFamily) {
  for (const std::size_t n : {2u, 5u, 66u}) {
    const Graph g = complete_graph(n);
    std::vector<Edge> edges;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        edges.emplace_back(static_cast<ArmId>(i), static_cast<ArmId>(j));
      }
    }
    expect_matches_reference(g, reference_adjacency(n, edges));
    expect_construction_equivalence(n, edges);
  }
}

TEST(GraphCsr, ErdosRenyiFamily) {
  Xoshiro256 rng(20170605);
  for (const double p : {0.05, 0.3, 0.9}) {
    const Graph g = erdos_renyi(90, p, rng);
    // The generator takes the fast path; rebuilding from its edge dump via
    // the deduplicating constructor must reproduce it exactly.
    expect_construction_equivalence(90, g.edges());
  }
}

TEST(GraphCsr, WattsStrogatzFamily) {
  Xoshiro256 rng(7);
  const Graph g = watts_strogatz(80, 3, 0.2, rng);
  expect_construction_equivalence(80, g.edges());
}

TEST(GraphCsr, BarabasiAlbertAndGridFamilies) {
  Xoshiro256 rng(11);
  const Graph ba = barabasi_albert(60, 2, rng);
  expect_construction_equivalence(60, ba.edges());
  const Graph grid = grid_graph(6, 9);
  expect_construction_equivalence(54, grid.edges());
}

TEST(GraphCsr, ClosedRowSharesOffsetsAcrossWordBoundaries) {
  // 130 vertices spans three 64-bit words; a path graph exercises closed
  // rows whose self-insertion lands at the front, middle, and back.
  const Graph g = path_graph(130);
  EXPECT_EQ(g.closed_neighborhood(0), (ArmSet{0, 1}));
  EXPECT_EQ(g.closed_neighborhood(64), (ArmSet{63, 64, 65}));
  EXPECT_EQ(g.closed_neighborhood(129), (ArmSet{128, 129}));
  EXPECT_EQ(g.neighbors(64), (ArmSet{63, 65}));
}

TEST(GraphCsr, StrategyNeighborhoodMatchesBruteForceUnion) {
  Xoshiro256 rng(5);
  const Graph g = erdos_renyi(70, 0.2, rng);
  const ArmSet strategy{3, 17, 42, 69};
  std::set<ArmId> expected;
  for (const ArmId i : strategy) {
    expected.insert(i);
    for (const ArmId j : g.neighbors(i)) expected.insert(j);
  }
  EXPECT_EQ(g.strategy_neighborhood_list(strategy),
            ArmSet(expected.begin(), expected.end()));
  EXPECT_EQ(g.strategy_neighborhood(strategy).count(), expected.size());
}

TEST(GraphCsr, SpanViewsAreStableAndComparable) {
  const Graph g = cycle_graph(10);
  const ArmSpan a = g.neighbors(4);
  const ArmSpan b = g.neighbors(4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.data(), b.data());  // views into the same flat CSR array
  EXPECT_EQ(a.to_vector(), (ArmSet{3, 5}));
  EXPECT_NE(a, g.neighbors(5));
}

TEST(GraphCsr, ConstructorValidationUnchanged) {
  EXPECT_THROW(Graph(3, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(Graph(3, {{0, 3}}), std::out_of_range);
  EXPECT_THROW(Graph(3, {{-1, 1}}), std::out_of_range);
  EXPECT_THROW(Graph::from_unique_edges(3, {{1, 1}}), std::invalid_argument);
  EXPECT_THROW(Graph::from_unique_edges(3, {{0, 5}}), std::out_of_range);
  EXPECT_THROW(Graph(2, {{0, 1}}).strategy_neighborhood({2}),
               std::out_of_range);
}

TEST(GraphCsr, ComplementAndInducedSubgraphStayConsistent) {
  Xoshiro256 rng(3);
  const Graph g = erdos_renyi(40, 0.4, rng);
  const Graph c = g.complement();
  EXPECT_EQ(g.num_edges() + c.num_edges(), 40u * 39u / 2u);
  for (ArmId u = 0; u < 40; ++u) {
    for (ArmId v = u + 1; v < 40; ++v) {
      EXPECT_NE(g.has_edge(u, v), c.has_edge(u, v));
    }
  }
  ArmSet ids;
  const Graph sub = g.induced_subgraph({5, 1, 30}, &ids);
  EXPECT_EQ(ids, (ArmSet{5, 1, 30}));
  EXPECT_EQ(sub.has_edge(0, 1), g.has_edge(5, 1));
  EXPECT_EQ(sub.has_edge(0, 2), g.has_edge(5, 30));
  EXPECT_EQ(sub.has_edge(1, 2), g.has_edge(1, 30));
}

}  // namespace
}  // namespace ncb
