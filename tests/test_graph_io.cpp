#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

TEST(EdgeList, RoundTripSmall) {
  const Graph g = path_graph(4);
  const Graph parsed = parse_edge_list(to_edge_list(g));
  EXPECT_EQ(parsed.num_vertices(), 4u);
  EXPECT_EQ(parsed.edges(), g.edges());
}

TEST(EdgeList, RoundTripRandom) {
  Xoshiro256 rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = erdos_renyi(25, 0.3, rng);
    const Graph parsed = parse_edge_list(to_edge_list(g));
    EXPECT_EQ(parsed.edges(), g.edges());
  }
}

TEST(EdgeList, EmptyGraph) {
  const Graph parsed = parse_edge_list("5 0\n");
  EXPECT_EQ(parsed.num_vertices(), 5u);
  EXPECT_EQ(parsed.num_edges(), 0u);
}

TEST(EdgeList, CommentsAndBlanksIgnored) {
  const Graph parsed = parse_edge_list(
      "# relation graph\n3 2\n\n0 1  # first edge\n1 2\n");
  EXPECT_EQ(parsed.num_edges(), 2u);
  EXPECT_TRUE(parsed.has_edge(0, 1));
  EXPECT_TRUE(parsed.has_edge(1, 2));
}

TEST(EdgeList, MalformedHeaderThrows) {
  EXPECT_THROW((void)parse_edge_list("oops\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_edge_list(""), std::invalid_argument);
}

TEST(EdgeList, EdgeCountMismatchThrows) {
  EXPECT_THROW((void)parse_edge_list("3 2\n0 1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_edge_list("3 0\n0 1\n"), std::invalid_argument);
}

TEST(EdgeList, InvalidEdgesRejectedByGraph) {
  EXPECT_THROW((void)parse_edge_list("3 1\n0 3\n"), std::out_of_range);
  EXPECT_THROW((void)parse_edge_list("3 1\n1 1\n"), std::invalid_argument);
}

TEST(EdgeList, ReadFromStream) {
  std::istringstream in("2 1\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Dot, ContainsVerticesAndEdges) {
  const Graph g = path_graph(3);
  const auto dot = to_dot(g, "relation");
  EXPECT_NE(dot.find("graph relation {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
}

TEST(Dot, LabelsApplied) {
  const Graph g = path_graph(2);
  const std::vector<std::string> labels{"hub", "leaf"};
  const auto dot = to_dot(g, "G", &labels);
  EXPECT_NE(dot.find("label=\"hub\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"leaf\""), std::string::npos);
}

TEST(Dot, LabelSizeMismatchThrows) {
  const Graph g = path_graph(3);
  const std::vector<std::string> labels{"a"};
  EXPECT_THROW((void)to_dot(g, "G", &labels), std::invalid_argument);
}

}  // namespace
}  // namespace ncb
