// util/histogram.hpp — the log-scale latency histogram: bucket mapping
// invariants, quantile bounds, merge/reset, and the error guarantee
// (quantiles never understate, overstate by at most 1/kSubBuckets).
#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ncb {
namespace {

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(v), v);
  }
}

TEST(HistogramBuckets, IndexIsMonotoneAndUpperIsInclusive) {
  // Walk every bucket edge across several decades: the upper edge must map
  // into its own bucket, and upper+1 into the next.
  for (std::size_t i = 0; i + 1 < 16 * LatencyHistogram::kSubBuckets; ++i) {
    const std::uint64_t upper = LatencyHistogram::bucket_upper(i);
    EXPECT_EQ(LatencyHistogram::bucket_index(upper), i) << "upper of " << i;
    EXPECT_EQ(LatencyHistogram::bucket_index(upper + 1), i + 1)
        << "upper+1 of " << i;
  }
}

TEST(HistogramBuckets, ExtremesStayInRange) {
  EXPECT_LT(LatencyHistogram::bucket_index(~std::uint64_t{0}),
            LatencyHistogram::kNumBuckets);
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0u);
}

TEST(Histogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 12345u);
  // One value: every quantile is that value (capped at the exact max).
  EXPECT_EQ(h.p50(), 12345u);
  EXPECT_EQ(h.p99(), 12345u);
}

TEST(Histogram, QuantileErrorBoundAgainstExact) {
  // Compare against exact nearest-rank quantiles on a log-uniform sample:
  // the histogram may overstate by at most 1/kSubBuckets, never understate.
  Xoshiro256 rng(42);
  std::vector<std::uint64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v =
        static_cast<std::uint64_t>(100.0 * (1 << rng.uniform_int(16)) *
                                   (1.0 + rng.uniform()));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size()) + 0.5);
    rank = std::max<std::size_t>(1, std::min(rank, values.size()));
    const double exact = static_cast<double>(values[rank - 1]);
    const double reported = static_cast<double>(h.quantile(q));
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LE(reported, exact * (1.0 + 1.0 / LatencyHistogram::kSubBuckets))
        << "q=" << q;
  }
}

TEST(Histogram, QuantileIsCappedAtMax) {
  LatencyHistogram h;
  h.record(1000);
  h.record(1001);
  EXPECT_EQ(h.quantile(1.0), 1001u);
  EXPECT_LE(h.p999(), h.max());
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Xoshiro256 rng(7);
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform_int(1u << 20);
    (i % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  for (const double q : {0.1, 0.5, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.record(5);
  h.record(500);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p99(), 0u);
}

}  // namespace
}  // namespace ncb
