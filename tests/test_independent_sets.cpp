#include "graph/independent_sets.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace ncb {
namespace {

TEST(EnumerateIndependentSets, PaperFig2PathHasSevenStrategies) {
  // The paper's Fig. 2: 4-arm path, feasible set = 7 independent sets.
  const Graph g = path_graph(4);
  const auto sets = enumerate_independent_sets(g);
  ASSERT_EQ(sets.size(), 7u);
  const std::vector<ArmSet> expected{
      {0}, {1}, {2}, {3}, {0, 2}, {0, 3}, {1, 3}};
  EXPECT_EQ(sets, expected);
}

TEST(EnumerateIndependentSets, EmptyGraphAllSubsets) {
  const Graph g = empty_graph(4);
  // 2^4 - 1 = 15 non-empty subsets.
  EXPECT_EQ(enumerate_independent_sets(g).size(), 15u);
}

TEST(EnumerateIndependentSets, CompleteGraphOnlySingletons) {
  const Graph g = complete_graph(5);
  const auto sets = enumerate_independent_sets(g);
  ASSERT_EQ(sets.size(), 5u);
  for (const auto& s : sets) EXPECT_EQ(s.size(), 1u);
}

TEST(EnumerateIndependentSets, MaxSizeLimits) {
  const Graph g = empty_graph(5);
  // Subsets of size ≤ 2: 5 + 10 = 15.
  EXPECT_EQ(enumerate_independent_sets(g, 2).size(), 15u);
  EXPECT_EQ(enumerate_independent_sets(g, 1).size(), 5u);
}

TEST(EnumerateIndependentSets, AllResultsActuallyIndependent) {
  Xoshiro256 rng(3);
  const Graph g = erdos_renyi(10, 0.4, rng);
  for (const auto& s : enumerate_independent_sets(g)) {
    EXPECT_TRUE(g.is_independent_set(s));
  }
}

TEST(MaximalIndependentSets, PathFour) {
  const Graph g = path_graph(4);
  const auto sets = enumerate_maximal_independent_sets(g);
  // Maximal ISs of P4: {0,2}, {0,3}, {1,3}.
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_NE(std::find(sets.begin(), sets.end(), ArmSet{0, 2}), sets.end());
  EXPECT_NE(std::find(sets.begin(), sets.end(), ArmSet{0, 3}), sets.end());
  EXPECT_NE(std::find(sets.begin(), sets.end(), ArmSet{1, 3}), sets.end());
}

TEST(MaximalIndependentSets, CompleteGraph) {
  const auto sets = enumerate_maximal_independent_sets(complete_graph(4));
  EXPECT_EQ(sets.size(), 4u);
}

TEST(MaximalIndependentSets, EmptyGraphSingleMaximal) {
  const auto sets = enumerate_maximal_independent_sets(empty_graph(5));
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0], (ArmSet{0, 1, 2, 3, 4}));
}

TEST(MaximalIndependentSets, EveryResultIsMaximal) {
  Xoshiro256 rng(8);
  const Graph g = erdos_renyi(12, 0.3, rng);
  for (const auto& s : enumerate_maximal_independent_sets(g)) {
    EXPECT_TRUE(g.is_independent_set(s));
    // No vertex can be added.
    for (ArmId v = 0; v < static_cast<ArmId>(g.num_vertices()); ++v) {
      if (std::find(s.begin(), s.end(), v) != s.end()) continue;
      ArmSet extended = s;
      extended.push_back(v);
      std::sort(extended.begin(), extended.end());
      EXPECT_FALSE(g.is_independent_set(extended))
          << "vertex " << v << " extends a 'maximal' IS";
    }
  }
}

TEST(MaximumIndependentSet, KnownSizes) {
  EXPECT_EQ(maximum_independent_set(path_graph(4)).size(), 2u);
  EXPECT_EQ(maximum_independent_set(path_graph(5)).size(), 3u);
  EXPECT_EQ(maximum_independent_set(cycle_graph(6)).size(), 3u);
  EXPECT_EQ(maximum_independent_set(cycle_graph(5)).size(), 2u);
  EXPECT_EQ(maximum_independent_set(complete_graph(7)).size(), 1u);
  EXPECT_EQ(maximum_independent_set(empty_graph(7)).size(), 7u);
}

TEST(MaximumWeightIndependentSet, PrefersHeavyVertex) {
  // Path 0-1-2: weights make the middle vertex worth more than both ends.
  const Graph g = path_graph(3);
  const auto s = maximum_weight_independent_set(g, {1.0, 5.0, 1.0});
  EXPECT_EQ(s, (ArmSet{1}));
}

TEST(MaximumWeightIndependentSet, PrefersTwoEndsWhenHeavier) {
  const Graph g = path_graph(3);
  const auto s = maximum_weight_independent_set(g, {3.0, 5.0, 3.0});
  EXPECT_EQ(s, (ArmSet{0, 2}));
}

TEST(MaximumWeightIndependentSet, MatchesBruteForceOnRandomGraphs) {
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = erdos_renyi(9, 0.4, rng);
    std::vector<double> weights(9);
    for (auto& w : weights) w = rng.uniform();
    // Brute force over all independent sets.
    double best = 0.0;
    for (const auto& s : enumerate_independent_sets(g)) {
      double total = 0.0;
      for (const ArmId v : s) total += weights[static_cast<std::size_t>(v)];
      best = std::max(best, total);
    }
    const auto found = maximum_weight_independent_set(g, weights);
    double found_weight = 0.0;
    for (const ArmId v : found) found_weight += weights[static_cast<std::size_t>(v)];
    EXPECT_NEAR(found_weight, best, 1e-12);
    EXPECT_TRUE(g.is_independent_set(found));
  }
}

// Property sweep: counts of independent sets and maximal ISs agree with a
// brute-force bitmask enumeration on random graphs.
class IndependentSetCount : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndependentSetCount, MatchesBruteForce) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 8;
  const Graph g = erdos_renyi(n, 0.35, rng);
  std::size_t brute = 0;
  for (unsigned mask = 1; mask < (1u << n); ++mask) {
    ArmSet s;
    for (std::size_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) s.push_back(static_cast<ArmId>(v));
    }
    if (g.is_independent_set(s)) ++brute;
  }
  EXPECT_EQ(enumerate_independent_sets(g).size(), brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndependentSetCount,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace ncb
