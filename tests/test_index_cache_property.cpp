// Property: the incremental index cache is always exactly (bitwise, via
// double ==) equal to a from-scratch recompute.
//
// SingleIndexPolicy::select() refreshes only dirty arms plus arms whose
// plateau expired; index(i, t) is the pure from-scratch reference each
// policy must also implement. After any interleaving of selects, batched
// side observations, observe-without-select bursts, sliding-window
// evictions, non-monotone timestamps, and mid-run resets, the two must
// agree on every arm — not approximately, exactly. Any drift means a
// stale cache entry survived (wrong valid_until, missed dirty marking,
// or a hoisted expression that is not bit-identical to the reference).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/index_policy.hpp"
#include "core/policy_factory.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

constexpr TimeSlot kHorizon = 200;
constexpr int kSteps = 400;

const std::vector<std::string> kIndexPolicies = {
    "dfl-sso",  "dfl-sso-greedy", "dfl-ssr", "dfl-ssr-meansum",
    "moss",     "moss-anytime",   "ucb1",    "ucb-n",
    "ucb-maxn", "kl-ucb",         "kl-ucb-n", "sw-dfl-sso",
    "d-dfl-sso"};

struct NamedGraph {
  std::string name;
  Graph graph;
};

std::vector<NamedGraph> property_graphs() {
  std::vector<NamedGraph> graphs;
  {
    Xoshiro256 gen(101);
    graphs.push_back({"er", erdos_renyi(40, 0.15, gen)});
  }
  {
    Xoshiro256 gen(102);
    graphs.push_back({"ws", watts_strogatz(40, 4, 0.2, gen)});
  }
  {
    Xoshiro256 gen(103);
    graphs.push_back({"ba", barabasi_albert(40, 3, gen)});
  }
  graphs.push_back({"star", star_graph(40)});
  return graphs;
}

// Deterministic per-cell seed so failures reproduce in isolation.
std::uint64_t fnv_seed(const std::string& a, const std::string& b) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : a + "|" + b) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

void expect_cache_matches_recompute(SingleIndexPolicy& policy, TimeSlot t,
                                    std::size_t num_arms, int step) {
  const std::vector<double>& cache = policy.cached_indices();
  ASSERT_EQ(cache.size(), num_arms);
  for (std::size_t i = 0; i < num_arms; ++i) {
    const double fresh = policy.index(static_cast<ArmId>(i), t);
    // Exact double equality on purpose (inf == inf holds): the cached
    // entry must be the same value the full recompute would produce.
    EXPECT_EQ(cache[i], fresh)
        << policy.name() << ": arm " << i << " at t=" << t << " (step "
        << step << ") cached " << cache[i] << " vs recomputed " << fresh;
  }
}

void observe_neighborhood(SinglePlayPolicy& policy, const Graph& g, ArmId arm,
                          TimeSlot t, Xoshiro256& rewards,
                          std::vector<Observation>& batch) {
  batch.clear();
  for (const ArmId j : g.closed_neighborhood(arm)) {
    batch.push_back({j, rewards.bernoulli(0.5) ? 1.0 : 0.0});
  }
  policy.observe(arm, t, ObservationSpan(batch.data(), batch.size()));
}

TEST(IndexCacheProperty, CacheEqualsFromScratchRecompute) {
  const auto graphs = property_graphs();
  for (const auto& spec : kIndexPolicies) {
    for (const auto& [gname, g] : graphs) {
      SCOPED_TRACE(spec + " on " + gname);
      const auto policy = make_single_play_policy(spec, kHorizon, 7);
      auto* idx = dynamic_cast<SingleIndexPolicy*>(policy.get());
      ASSERT_NE(idx, nullptr);
      policy->reset(g);

      const std::size_t n = g.num_vertices();
      Xoshiro256 actions(9000 + fnv_seed(spec, gname));
      Xoshiro256 rewards(77);
      std::vector<Observation> batch;
      TimeSlot t = 0;
      for (int step = 0; step < kSteps; ++step) {
        const std::uint64_t roll = actions.uniform_int(100);
        if (roll < 6) {
          // Mid-run reset: the cache must rebuild from nothing.
          policy->reset(g);
          t = 0;
          continue;
        }
        if (roll < 20 && t > 0) {
          // Observe-without-select burst: dirty arms accumulate (dedup'd)
          // with no refresh until the next select.
          const ArmId arm =
              static_cast<ArmId>(actions.uniform_int(static_cast<std::uint64_t>(n)));
          observe_neighborhood(*policy, g, arm, t, rewards, batch);
          continue;
        }
        if (roll < 24 && t > 4) {
          // Non-monotone timestamp: forces the full-rebuild path.
          t = 1 + static_cast<TimeSlot>(
                      actions.uniform_int(static_cast<std::uint64_t>(t - 1)));
        } else {
          // Advance 1-3 slots so plateau expiries fire at gaps too.
          t += 1 + static_cast<TimeSlot>(actions.uniform_int(3));
        }
        const ArmId a = policy->select(t);
        ASSERT_GE(a, 0);
        ASSERT_LT(static_cast<std::size_t>(a), n);
        expect_cache_matches_recompute(*idx, t, n, step);
        observe_neighborhood(*policy, g, a, t, rewards, batch);
      }
      // Final sweep after the last observe: one more select so evictions
      // (sw-dfl-sso) and late expiries are folded in, then recheck.
      t += 1;
      (void)policy->select(t);
      expect_cache_matches_recompute(*idx, t, n, kSteps);
    }
  }
}

TEST(IndexCacheProperty, InvalidateForcesExactRebuild) {
  Xoshiro256 gen(55);
  const Graph g = erdos_renyi(30, 0.2, gen);
  for (const auto& spec : kIndexPolicies) {
    SCOPED_TRACE(spec);
    const auto policy = make_single_play_policy(spec, kHorizon, 3);
    auto* idx = dynamic_cast<SingleIndexPolicy*>(policy.get());
    ASSERT_NE(idx, nullptr);
    policy->reset(g);
    Xoshiro256 rewards(5);
    std::vector<Observation> batch;
    for (TimeSlot t = 1; t <= 50; ++t) {
      const ArmId a = policy->select(t);
      batch.clear();
      for (const ArmId j : g.closed_neighborhood(a)) {
        batch.push_back({j, rewards.bernoulli(0.5) ? 1.0 : 0.0});
      }
      policy->observe(a, t, ObservationSpan(batch.data(), batch.size()));
    }
    // Invalidate (the bench hook), then re-select: full rebuild must land
    // on exactly the same values as the incremental path maintained.
    const std::vector<double> before = idx->cached_indices();
    idx->invalidate_index_cache();
    (void)policy->select(51);
    const std::vector<double> rebuilt = idx->cached_indices();
    ASSERT_EQ(before.size(), rebuilt.size());
    for (std::size_t i = 0; i < rebuilt.size(); ++i) {
      EXPECT_EQ(rebuilt[i], idx->index(static_cast<ArmId>(i), 51));
    }
  }
}

}  // namespace
}  // namespace ncb
