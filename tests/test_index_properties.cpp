// Index-function properties shared by the DFL family: the exploration
// bonus must shrink with observations, grow with time, and preserve the
// ordering guarantees the regret proofs rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dfl_csr.hpp"
#include "core/dfl_sso.hpp"
#include "core/dfl_ssr.hpp"
#include "core/moss.hpp"
#include "graph/generators.hpp"

namespace ncb {
namespace {

TEST(IndexProperties, DflSsoIndexIncreasesWithT) {
  DflSso policy;
  policy.reset(empty_graph(2));
  policy.observe(0, 1, {{0, 0.5}});
  double prev = policy.index(0, 2);
  for (TimeSlot t = 20; t <= 20000; t *= 10) {
    const double cur = policy.index(0, t);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(IndexProperties, DflSsoIndexDecreasesWithObservations) {
  DflSso few, many;
  const Graph g = empty_graph(1);
  few.reset(g);
  many.reset(g);
  few.observe(0, 1, {{0, 0.5}});
  for (TimeSlot t = 1; t <= 50; ++t) many.observe(0, t, {{0, 0.5}});
  const TimeSlot t = 100000;
  EXPECT_GT(few.index(0, t), many.index(0, t));
}

TEST(IndexProperties, DflSsoIndexNeverBelowMean) {
  // width >= 0, so index >= empirical mean always.
  DflSso policy;
  policy.reset(empty_graph(1));
  Xoshiro256 rng(3);
  for (TimeSlot t = 1; t <= 200; ++t) {
    policy.observe(0, t, {{0, rng.uniform()}});
    EXPECT_GE(policy.index(0, t), policy.empirical_mean(0) - 1e-12);
  }
}

TEST(IndexProperties, DflSsoPureExploitationRegime) {
  // Once t/(K*O) <= 1, the bonus vanishes and index == mean.
  DflSso policy;
  policy.reset(empty_graph(2));
  for (TimeSlot t = 1; t <= 100; ++t) policy.observe(0, t, {{0, 0.25}});
  EXPECT_DOUBLE_EQ(policy.index(0, 10), 0.25);  // 10/(2*100) < 1
}

TEST(IndexProperties, ExplorationScaleOrdersIndices) {
  DflSso small(DflSsoOptions{.exploration_scale = 0.5});
  DflSso big(DflSsoOptions{.exploration_scale = 2.0});
  const Graph g = empty_graph(1);
  small.reset(g);
  big.reset(g);
  small.observe(0, 1, {{0, 0.5}});
  big.observe(0, 1, {{0, 0.5}});
  const TimeSlot t = 1000;
  EXPECT_LT(small.index(0, t), big.index(0, t));
  // Scale only affects the bonus: both equal the mean in exploitation mode.
  EXPECT_NEAR(small.index(0, t) - 0.5, 0.5 * (big.index(0, t) - 0.5) / 2.0,
              1e-9);
}

TEST(IndexProperties, MossFixedHorizonIndexConstantInT) {
  Moss policy(MossOptions{.horizon = 5000});
  policy.reset(empty_graph(2));
  policy.observe(0, 1, {{0, 0.3}});
  EXPECT_DOUBLE_EQ(policy.index(0, 1), policy.index(0, 4999));
}

TEST(IndexProperties, DflSsrIndexUsesObCount) {
  // Two arms on a path; the index widens when the side-reward counter is
  // the binding constraint, not the direct count.
  const Graph g = path_graph(2);
  DflSsr policy;
  policy.reset(g);
  policy.observe(0, 1, {{0, 0.5}, {1, 0.5}});
  policy.observe(0, 2, {{0, 0.5}, {1, 0.5}});
  // Ob_0 = min(O_0, O_1) = 2.
  EXPECT_EQ(policy.side_observation_count(0), 2);
  const double idx = policy.index(0, 8);
  // B̄_0 = 1.0; ratio = 8/(2*2) = 2 → width = sqrt(ln 2 / 2).
  EXPECT_NEAR(idx, 1.0 + std::sqrt(std::log(2.0) / 2.0), 1e-12);
}

TEST(IndexProperties, DflCsrScoreMatchesTwoThirdsSchedule) {
  // The CSR exploration term uses t^{2/3}: doubling t multiplies the ratio
  // by 2^{2/3}, strictly less than the SSO index growth.
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(empty_graph(4)), 2));
  DflCsr policy(family);
  std::vector<Observation> obs{{0, 0.5}, {1, 0.5}};
  policy.observe(0, 1, obs);
  const double s1 = policy.arm_score(0, 1000);
  const double s2 = policy.arm_score(0, 8000);  // t x8 → t^{2/3} x4
  const double r1 = std::exp(std::pow(s1 - 0.5, 2.0));  // e^{width²} ∝ ratio
  const double r2 = std::exp(std::pow(s2 - 0.5, 2.0));
  EXPECT_NEAR(r2 / r1, 4.0, 1e-6);
}

}  // namespace
}  // namespace ncb
