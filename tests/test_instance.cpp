#include "env/instance.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ncb {
namespace {

BanditInstance make_path_instance() {
  // Path 0-1-2-3 with means 0.1, 0.8, 0.3, 0.6.
  return bernoulli_instance(path_graph(4), {0.1, 0.8, 0.3, 0.6});
}

TEST(BanditInstance, MeansExposed) {
  const auto inst = make_path_instance();
  EXPECT_EQ(inst.num_arms(), 4u);
  EXPECT_EQ(inst.means(), (std::vector<double>{0.1, 0.8, 0.3, 0.6}));
}

TEST(BanditInstance, BestArmByDirectMean) {
  const auto inst = make_path_instance();
  EXPECT_EQ(inst.best_arm(), 1);
  EXPECT_DOUBLE_EQ(inst.best_mean(), 0.8);
}

TEST(BanditInstance, SideRewardMeans) {
  const auto inst = make_path_instance();
  // u_0 = mu0+mu1 = 0.9; u_1 = mu0+mu1+mu2 = 1.2;
  // u_2 = mu1+mu2+mu3 = 1.7; u_3 = mu2+mu3 = 0.9.
  const auto& u = inst.side_reward_means();
  EXPECT_NEAR(u[0], 0.9, 1e-12);
  EXPECT_NEAR(u[1], 1.2, 1e-12);
  EXPECT_NEAR(u[2], 1.7, 1e-12);
  EXPECT_NEAR(u[3], 0.9, 1e-12);
}

TEST(BanditInstance, BestSideRewardArmDiffersFromBestArm) {
  // The paper notes the SSR optimum can differ from the SSO optimum: here
  // arm 2 has the best neighborhood although arm 1 has the best mean.
  const auto inst = make_path_instance();
  EXPECT_EQ(inst.best_side_reward_arm(), 2);
  EXPECT_NEAR(inst.best_side_reward_mean(), 1.7, 1e-12);
  EXPECT_NE(inst.best_side_reward_arm(), inst.best_arm());
}

TEST(BanditInstance, StrategyMeanIsModularSum) {
  const auto inst = make_path_instance();
  EXPECT_NEAR(inst.strategy_mean({0, 2}), 0.4, 1e-12);
  EXPECT_NEAR(inst.strategy_mean({1, 3}), 1.4, 1e-12);
}

TEST(BanditInstance, StrategySideRewardMeanIsCoverageSum) {
  const auto inst = make_path_instance();
  // Y({0,2}) = {0,1,2,3} → 1.8; Y({3}) = {2,3} → 0.9.
  EXPECT_NEAR(inst.strategy_side_reward_mean({0, 2}), 1.8, 1e-12);
  EXPECT_NEAR(inst.strategy_side_reward_mean({3}), 0.9, 1e-12);
}

TEST(BanditInstance, CopyIsDeep) {
  const auto inst = make_path_instance();
  BanditInstance copy = inst;
  EXPECT_EQ(copy.means(), inst.means());
  EXPECT_EQ(copy.best_arm(), inst.best_arm());
  // Arm objects are distinct clones.
  EXPECT_NE(&copy.arm(0), &inst.arm(0));
}

TEST(BanditInstance, AssignmentCopies) {
  const auto a = make_path_instance();
  auto b = bernoulli_instance(path_graph(2), {0.5, 0.5});
  b = a;
  EXPECT_EQ(b.num_arms(), 4u);
  EXPECT_EQ(b.means(), a.means());
}

TEST(BanditInstance, ValidatesConstruction) {
  std::vector<DistributionPtr> two;
  two.push_back(std::make_unique<BernoulliDist>(0.5));
  two.push_back(std::make_unique<BernoulliDist>(0.5));
  EXPECT_THROW(BanditInstance(path_graph(3), std::move(two)),
               std::invalid_argument);
  std::vector<DistributionPtr> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(BanditInstance(path_graph(1), std::move(with_null)),
               std::invalid_argument);
}

TEST(BanditInstance, ToStringListsArms) {
  const auto text = make_path_instance().to_string();
  EXPECT_NE(text.find("K=4"), std::string::npos);
  EXPECT_NE(text.find("Bernoulli(0.8)"), std::string::npos);
}

TEST(RandomBernoulliInstance, MeansInRange) {
  Xoshiro256 rng(10);
  const auto inst = random_bernoulli_instance(empty_graph(50), rng, 0.2, 0.7);
  for (const double mu : inst.means()) {
    EXPECT_GE(mu, 0.2);
    EXPECT_LT(mu, 0.7);
  }
}

TEST(RandomBernoulliInstance, DeterministicGivenRng) {
  Xoshiro256 a(10), b(10);
  const auto ia = random_bernoulli_instance(path_graph(10), a);
  const auto ib = random_bernoulli_instance(path_graph(10), b);
  EXPECT_EQ(ia.means(), ib.means());
}

TEST(RandomBetaInstance, MeansInOpenInterval) {
  Xoshiro256 rng(11);
  const auto inst = random_beta_instance(empty_graph(30), rng);
  for (const double mu : inst.means()) {
    EXPECT_GT(mu, 0.0);
    EXPECT_LT(mu, 1.0);
  }
}

TEST(BanditInstance, TieBreaksTowardSmallestId) {
  const auto inst = bernoulli_instance(empty_graph(3), {0.5, 0.5, 0.2});
  EXPECT_EQ(inst.best_arm(), 0);
}

}  // namespace
}  // namespace ncb
