// Cross-module integration tests: the paper's qualitative claims on small,
// fast instances. These assert the *shape* results the figures show —
// convergence to zero per-slot regret, and DFL-SSO dominating MOSS.
#include <gtest/gtest.h>

#include "core/policy_factory.hpp"
#include "graph/generators.hpp"
#include "sim/experiment.hpp"
#include "sim/replication.hpp"

namespace ncb {
namespace {

BanditInstance er_instance(std::size_t k, double p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return random_bernoulli_instance(erdos_renyi(k, p, rng), rng);
}

ReplicationOptions opts(std::size_t reps, TimeSlot horizon) {
  ReplicationOptions o;
  o.replications = reps;
  o.master_seed = 777;
  o.runner.horizon = horizon;
  return o;
}

SinglePolicyFactory named_factory(const std::string& name, TimeSlot horizon) {
  return [name, horizon](std::uint64_t seed) {
    return make_single_play_policy(name, horizon, seed);
  };
}

double tail_mean(const std::vector<double>& series, std::size_t window) {
  double total = 0.0;
  for (std::size_t i = 0; i < window; ++i) {
    total += series[series.size() - 1 - i];
  }
  return total / static_cast<double>(window);
}

TEST(Integration, DflSsoBeatsMossOnConnectedGraph) {
  // Fig. 3's claim on a reduced instance: K = 30, n = 3000.
  const auto inst = er_instance(30, 0.3, 11);
  const TimeSlot n = 3000;
  const auto sso = run_replicated_single(named_factory("dfl-sso", n), inst,
                                         Scenario::kSso, opts(10, n));
  const auto moss = run_replicated_single(named_factory("moss", n), inst,
                                          Scenario::kSso, opts(10, n));
  EXPECT_LT(sso.final_cumulative.mean(), moss.final_cumulative.mean());
}

TEST(Integration, DflSsoEqualsMossShapeOnEmptyGraph) {
  // Without edges there is no side information: both anytime-MOSS-style
  // policies should end with comparable cumulative regret (within 2x).
  const auto inst = er_instance(10, 0.0, 13);
  const TimeSlot n = 2000;
  const auto sso = run_replicated_single(named_factory("dfl-sso", n), inst,
                                         Scenario::kSso, opts(10, n));
  const auto moss = run_replicated_single(named_factory("moss-anytime", n),
                                          inst, Scenario::kSso, opts(10, n));
  const double a = sso.final_cumulative.mean();
  const double b = moss.final_cumulative.mean();
  EXPECT_LT(a, 2.0 * b + 50.0);
  EXPECT_LT(b, 2.0 * a + 50.0);
}

TEST(Integration, DflSsoZeroRegretTrend) {
  // R_t/t must shrink substantially from t = 100 to t = n.
  const auto inst = er_instance(20, 0.3, 17);
  const TimeSlot n = 4000;
  const auto result = run_replicated_single(named_factory("dfl-sso", n), inst,
                                            Scenario::kSso, opts(10, n));
  const auto avg = result.average_regret();
  EXPECT_LT(avg.back(), 0.5 * avg[99]);
}

TEST(Integration, DflSsrConvergesToZeroPerSlotRegret) {
  // Fig. 5's claim: expected regret → 0.
  const auto inst = er_instance(15, 0.3, 19);
  const TimeSlot n = 4000;
  const auto result = run_replicated_single(named_factory("dfl-ssr", n), inst,
                                            Scenario::kSsr, opts(10, n));
  const auto pseudo = result.per_slot_pseudo_regret.means();
  EXPECT_LT(tail_mean(pseudo, 200), 0.15);
}

TEST(Integration, DflCsoConvergesOnDenseGraph) {
  // Fig. 4(b)'s claim on a reduced instance.
  ExperimentConfig c;
  c.num_arms = 10;
  c.edge_probability = 0.6;
  c.horizon = 3000;
  c.replications = 6;
  c.strategy_size = 2;
  const auto result = run_combinatorial_experiment(c, "dfl-cso", Scenario::kCso);
  const auto pseudo = result.per_slot_pseudo_regret.means();
  EXPECT_LT(tail_mean(pseudo, 150), 0.2);
}

TEST(Integration, DflCsrConvergesToZeroPerSlotRegret) {
  // Fig. 6's claim on a reduced instance.
  ExperimentConfig c;
  c.num_arms = 10;
  c.edge_probability = 0.3;
  c.horizon = 3000;
  c.replications = 6;
  c.strategy_size = 2;
  const auto result = run_combinatorial_experiment(c, "dfl-csr", Scenario::kCsr);
  const auto pseudo = result.per_slot_pseudo_regret.means();
  EXPECT_LT(tail_mean(pseudo, 150), 0.25);
}

TEST(Integration, SidePoliciesBeatRandom) {
  const auto inst = er_instance(15, 0.4, 23);
  const TimeSlot n = 2000;
  const auto random = run_replicated_single(named_factory("random", n), inst,
                                            Scenario::kSso, opts(6, n));
  for (const char* name : {"dfl-sso", "ucb-n", "ucb1", "thompson"}) {
    const auto result = run_replicated_single(named_factory(name, n), inst,
                                              Scenario::kSso, opts(6, n));
    EXPECT_LT(result.final_cumulative.mean(),
              0.8 * random.final_cumulative.mean())
        << name;
  }
}

TEST(Integration, UcbNBenefitsFromSideObservations) {
  const auto inst = er_instance(25, 0.4, 29);
  const TimeSlot n = 2500;
  const auto ucb_n = run_replicated_single(named_factory("ucb-n", n), inst,
                                           Scenario::kSso, opts(8, n));
  const auto ucb1 = run_replicated_single(named_factory("ucb1", n), inst,
                                          Scenario::kSso, opts(8, n));
  EXPECT_LT(ucb_n.final_cumulative.mean(), ucb1.final_cumulative.mean());
}

TEST(Integration, DenserGraphsHelpDflSso) {
  // Side observation grows with density; cumulative regret should drop.
  const TimeSlot n = 2500;
  const auto sparse = run_replicated_single(
      named_factory("dfl-sso", n), er_instance(30, 0.1, 31), Scenario::kSso,
      opts(8, n));
  const auto dense = run_replicated_single(
      named_factory("dfl-sso", n), er_instance(30, 0.8, 31), Scenario::kSso,
      opts(8, n));
  EXPECT_LT(dense.final_cumulative.mean(), sparse.final_cumulative.mean());
}

TEST(Integration, SsrOptimumDiffersFromSsoOptimum) {
  // A concrete instance where maximizing side reward changes the target,
  // and DFL-SSR finds it: star whose hub has a poor direct mean.
  const Graph g = star_graph(5);
  auto inst = bernoulli_instance(g, {0.1, 0.9, 0.5, 0.5, 0.5});
  ASSERT_EQ(inst.best_arm(), 1);
  ASSERT_EQ(inst.best_side_reward_arm(), 0);
  const TimeSlot n = 3000;
  const auto result = run_replicated_single(named_factory("dfl-ssr", n), inst,
                                            Scenario::kSsr, opts(6, n));
  const auto pseudo = result.per_slot_pseudo_regret.means();
  EXPECT_LT(tail_mean(pseudo, 100), 0.2);
}

TEST(Integration, CsoAllObservableAtLeastAsGoodAsFaithful) {
  // More updates at equal observation cost should not hurt (allow noise).
  ExperimentConfig c;
  c.num_arms = 10;
  c.edge_probability = 0.5;
  c.horizon = 2500;
  c.replications = 6;
  c.strategy_size = 2;
  const auto faithful = run_combinatorial_experiment(c, "dfl-cso", Scenario::kCso);
  const auto observable =
      run_combinatorial_experiment(c, "dfl-cso-observable", Scenario::kCso);
  EXPECT_LT(observable.final_cumulative.mean(),
            1.3 * faithful.final_cumulative.mean() + 20.0);
}

}  // namespace
}  // namespace ncb
