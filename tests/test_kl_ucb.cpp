#include "core/kl_ucb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace ncb {
namespace {

TEST(BernoulliKl, KnownValues) {
  EXPECT_NEAR(KlUcb::bernoulli_kl(0.5, 0.5), 0.0, 1e-12);
  // kl(0.5, 0.75) = 0.5 ln(2/3·2) ... compute directly:
  const double expected =
      0.5 * std::log(0.5 / 0.75) + 0.5 * std::log(0.5 / 0.25);
  EXPECT_NEAR(KlUcb::bernoulli_kl(0.5, 0.75), expected, 1e-12);
}

TEST(BernoulliKl, NonNegativeAndZeroOnlyAtEquality) {
  for (double p = 0.1; p < 1.0; p += 0.2) {
    for (double q = 0.1; q < 1.0; q += 0.2) {
      const double kl = KlUcb::bernoulli_kl(p, q);
      EXPECT_GE(kl, 0.0);
      if (std::fabs(p - q) > 1e-9) {
        EXPECT_GT(kl, 0.0);
      }
    }
  }
}

TEST(BernoulliKl, HandlesBoundaryP) {
  EXPECT_GE(KlUcb::bernoulli_kl(0.0, 0.5), 0.0);
  EXPECT_GE(KlUcb::bernoulli_kl(1.0, 0.5), 0.0);
  EXPECT_TRUE(std::isfinite(KlUcb::bernoulli_kl(0.0, 1.0)));
}

TEST(KlUpperBound, AtLeastMeanAtMostOne) {
  for (double p = 0.0; p <= 1.0; p += 0.25) {
    const double q = KlUcb::kl_upper_bound(p, 10.0, std::log(100.0));
    EXPECT_GE(q, p - 1e-9);
    EXPECT_LE(q, 1.0);
  }
}

TEST(KlUpperBound, ShrinksWithCount) {
  const double budget = std::log(1000.0);
  const double loose = KlUcb::kl_upper_bound(0.4, 5.0, budget);
  const double tight = KlUcb::kl_upper_bound(0.4, 500.0, budget);
  EXPECT_GT(loose, tight);
  EXPECT_NEAR(tight, 0.4, 0.1);
}

TEST(KlUpperBound, SatisfiesKlConstraint) {
  const double p = 0.3, count = 20.0, budget = std::log(500.0);
  const double q = KlUcb::kl_upper_bound(p, count, budget);
  EXPECT_LE(count * KlUcb::bernoulli_kl(p, q), budget + 1e-6);
  // And q + epsilon violates it (q is the max).
  if (q < 0.999) {
    EXPECT_GT(count * KlUcb::bernoulli_kl(p, q + 1e-3), budget - 1e-6);
  }
}

TEST(KlUcb, InfiniteIndexWhenUnobserved) {
  KlUcb policy;
  policy.reset(empty_graph(3));
  EXPECT_TRUE(std::isinf(policy.index(0, 10)));
}

TEST(KlUcb, IgnoresSideObservationsByDefault) {
  const Graph g = star_graph(3);
  KlUcb policy;
  policy.reset(g);
  policy.observe(0, 1, {{0, 0.5}, {1, 0.9}, {2, 0.1}});
  EXPECT_EQ(policy.observation_count(0), 1);
  EXPECT_EQ(policy.observation_count(1), 0);
  EXPECT_EQ(policy.name(), "KL-UCB");
}

TEST(KlUcbN, ConsumesSideObservations) {
  const Graph g = star_graph(3);
  KlUcbOptions opts;
  opts.use_side_observations = true;
  KlUcb policy(opts);
  policy.reset(g);
  policy.observe(0, 1, {{0, 0.5}, {1, 0.9}, {2, 0.1}});
  EXPECT_EQ(policy.observation_count(1), 1);
  EXPECT_EQ(policy.observation_count(2), 1);
  EXPECT_EQ(policy.name(), "KL-UCB-N");
}

TEST(KlUcb, ConvergesToBestArm) {
  KlUcb policy;
  const Graph g = empty_graph(4);
  policy.reset(g);
  const std::vector<double> means{0.2, 0.7, 0.4, 0.3};
  Xoshiro256 rng(3);
  std::vector<std::int64_t> plays(4, 0);
  for (TimeSlot t = 1; t <= 3000; ++t) {
    const ArmId a = policy.select(t);
    ++plays[static_cast<std::size_t>(a)];
    const double r =
        rng.bernoulli(means[static_cast<std::size_t>(a)]) ? 1.0 : 0.0;
    policy.observe(a, t, {{a, r}});
  }
  EXPECT_GT(plays[1], 2500);
}

TEST(KlUcb, MissingPlayedArmThrows) {
  KlUcb policy;
  policy.reset(empty_graph(2));
  EXPECT_THROW(policy.observe(0, 1, {{1, 0.5}}), std::logic_error);
}

}  // namespace
}  // namespace ncb
