#include "util/math.hpp"

#include <gtest/gtest.h>

namespace ncb {
namespace {

TEST(LogPlus, ZeroBelowOne) {
  EXPECT_DOUBLE_EQ(log_plus(0.5), 0.0);
  EXPECT_DOUBLE_EQ(log_plus(1.0), 0.0);
  EXPECT_DOUBLE_EQ(log_plus(0.0), 0.0);
  EXPECT_DOUBLE_EQ(log_plus(-3.0), 0.0);
}

TEST(LogPlus, MatchesLogAboveOne) {
  EXPECT_NEAR(log_plus(std::exp(1.0)), 1.0, 1e-12);
  EXPECT_NEAR(log_plus(100.0), std::log(100.0), 1e-12);
}

TEST(ExplorationWidth, InfiniteWhenUnobserved) {
  EXPECT_TRUE(std::isinf(exploration_width(10.0, 0.0)));
}

TEST(ExplorationWidth, ZeroWhenRatioSmall) {
  // log+(ratio) = 0 → width 0: pure exploitation regime.
  EXPECT_DOUBLE_EQ(exploration_width(0.5, 10.0), 0.0);
}

TEST(ExplorationWidth, HandComputedValue) {
  // sqrt(ln(e^2)/4) = sqrt(2)/2.
  EXPECT_NEAR(exploration_width(std::exp(2.0), 4.0), std::sqrt(2.0) / 2.0,
              1e-12);
}

TEST(ExplorationWidth, DecreasesWithCount) {
  const double w1 = exploration_width(100.0, 5.0);
  const double w2 = exploration_width(100.0, 50.0);
  EXPECT_GT(w1, w2);
}

TEST(Clamp01, Clamps) {
  EXPECT_DOUBLE_EQ(clamp01(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.25), 0.25);
  EXPECT_DOUBLE_EQ(clamp01(1.5), 1.0);
}

TEST(AlmostEqual, Tolerance) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(1.0, 1.0005, 1e-3));
}

}  // namespace
}  // namespace ncb
