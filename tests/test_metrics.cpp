#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ncb {
namespace {

TEST(ConnectedComponents, SingleComponent) {
  const auto comps = connected_components(path_graph(5));
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0], (ArmSet{0, 1, 2, 3, 4}));
}

TEST(ConnectedComponents, AllIsolated) {
  const auto comps = connected_components(empty_graph(4));
  EXPECT_EQ(comps.size(), 4u);
}

TEST(ConnectedComponents, DisjointCliques) {
  const auto comps = connected_components(disjoint_cliques(3, 3));
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (ArmSet{0, 1, 2}));
  EXPECT_EQ(comps[1], (ArmSet{3, 4, 5}));
  EXPECT_EQ(comps[2], (ArmSet{6, 7, 8}));
}

TEST(ComputeMetrics, CompleteGraph) {
  const auto m = compute_metrics(complete_graph(6));
  EXPECT_EQ(m.num_vertices, 6u);
  EXPECT_EQ(m.num_edges, 15u);
  EXPECT_DOUBLE_EQ(m.density, 1.0);
  EXPECT_DOUBLE_EQ(m.avg_degree, 5.0);
  EXPECT_EQ(m.min_degree, 5u);
  EXPECT_EQ(m.max_degree, 5u);
  EXPECT_EQ(m.num_components, 1u);
  EXPECT_EQ(m.greedy_clique_cover_size, 1u);
}

TEST(ComputeMetrics, EmptyGraph) {
  const auto m = compute_metrics(empty_graph(5));
  EXPECT_DOUBLE_EQ(m.density, 0.0);
  EXPECT_EQ(m.num_components, 5u);
  EXPECT_EQ(m.greedy_clique_cover_size, 5u);
}

TEST(ComputeMetrics, StarGraph) {
  const auto m = compute_metrics(star_graph(9));
  EXPECT_EQ(m.max_degree, 8u);
  EXPECT_EQ(m.min_degree, 1u);
  EXPECT_NEAR(m.avg_degree, 16.0 / 9.0, 1e-12);
  EXPECT_EQ(m.num_components, 1u);
}

TEST(ComputeMetrics, ToStringMentionsFields) {
  const auto text = compute_metrics(path_graph(3)).to_string();
  EXPECT_NE(text.find("V=3"), std::string::npos);
  EXPECT_NE(text.find("E=2"), std::string::npos);
  EXPECT_NE(text.find("components=1"), std::string::npos);
}

}  // namespace
}  // namespace ncb
