// Multi-machine transport layer (src/net/): host:port parsing with
// flag-named errors, TCP connect/listen plumbing over real localhost
// sockets (frame round-trips, TCP_NODELAY, named EADDRINUSE / refused
// errors), the frame decoder fed byte-at-a-time and in fuzzed partial
// chunks through an actual TCP stream, the versioned worker handshake
// rejected over TCP, and the WorkerPool admission / loss / budget state
// machine driven through a TcpServerTransport.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "exp/emitters.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "net/worker_pool.hpp"

namespace ncb::net {
namespace {

// ------------------------------------------------------ host:port parse ---

TEST(HostPort, ParsesHostColonPort) {
  const HostPort address = parse_host_port("127.0.0.1:9000", "--listen");
  EXPECT_EQ(address.host, "127.0.0.1");
  EXPECT_EQ(address.port, 9000);
  EXPECT_EQ(format_host_port(address), "127.0.0.1:9000");
}

TEST(HostPort, ParsesPortZeroAndMaxPort) {
  EXPECT_EQ(parse_host_port("0.0.0.0:0", "--listen").port, 0);
  EXPECT_EQ(parse_host_port("localhost:65535", "--listen").port, 65535);
}

TEST(HostPort, RejectionsAreFieldNamed) {
  // Every rejection must name the flag so cluster misconfiguration reads
  // as "--listen: ..." in the CLI error, never a bare parse failure.
  const std::vector<std::string> bad = {
      "no-colon", ":9000", "host:", "host:banana", "host:12x", "host:70000",
      "host:-1", "",
  };
  for (const std::string& text : bad) {
    try {
      (void)parse_host_port(text, "--worker-connect");
      FAIL() << "accepted '" << text << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--worker-connect"),
                std::string::npos)
          << "error for '" << text << "' does not name the flag: "
          << e.what();
    }
  }
}

// ------------------------------------------------------------- TCP I/O ---

TEST(Tcp, LoopbackFrameRoundTripWithNodelay) {
  TcpListener listener(HostPort{"127.0.0.1", 0});
  ASSERT_GT(listener.bound().port, 0);

  const int client = tcp_connect(listener.bound(), 2000);
  ASSERT_GE(client, 0);

  // The connected socket advertises TCP_NODELAY (both ends).
  int nodelay = 0;
  socklen_t len = sizeof(nodelay);
  ASSERT_EQ(::getsockopt(client, IPPROTO_TCP, TCP_NODELAY, &nodelay, &len),
            0);
  EXPECT_NE(nodelay, 0);

  std::vector<std::pair<int, std::string>> accepted;
  for (int i = 0; i < 200 && accepted.empty(); ++i) {
    accepted = listener.accept_pending();
    if (accepted.empty()) ::usleep(5000);
  }
  ASSERT_EQ(accepted.size(), 1u);
  const int server = accepted[0].first;
  EXPECT_NE(accepted[0].second.find("127.0.0.1:"), std::string::npos);
  nodelay = 0;
  len = sizeof(nodelay);
  ASSERT_EQ(::getsockopt(server, IPPROTO_TCP, TCP_NODELAY, &nodelay, &len),
            0);
  EXPECT_NE(nodelay, 0);

  const std::string payload(100000, 'x');
  dist::write_frame(client, dist::MsgType::kJobResult, payload);
  const auto frame = dist::read_frame(server);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, dist::MsgType::kJobResult);
  EXPECT_EQ(frame->payload, payload);

  // And back the other way.
  dist::write_frame(server, dist::MsgType::kShutdown, "");
  const auto reply = dist::read_frame(client);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, dist::MsgType::kShutdown);

  ::close(client);
  ::close(server);
}

TEST(Tcp, ListenerRejectsAddressInUse) {
  TcpListener first(HostPort{"127.0.0.1", 0});
  try {
    TcpListener second(first.bound());
    FAIL() << "second bind of " << format_host_port(first.bound())
           << " succeeded";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("address already in use"), std::string::npos) << what;
    EXPECT_NE(what.find(format_host_port(first.bound())), std::string::npos)
        << what;
  }
}

TEST(Tcp, ConnectRefusedNamesEndpoint) {
  // Bind a port, then close it: nothing listens there, so connect is
  // refused (and the named port is provably ours to have been free).
  HostPort vacated;
  {
    TcpListener listener(HostPort{"127.0.0.1", 0});
    vacated = listener.bound();
  }
  try {
    (void)tcp_connect(vacated, 2000);
    FAIL() << "connect to a closed port succeeded";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("refused"), std::string::npos) << what;
    EXPECT_NE(what.find(format_host_port(vacated)), std::string::npos)
        << what;
  }
}

// ---------------------------------------- frame decoder over real TCP ---

/// Connects a client/server socket pair through a real localhost listener.
struct TcpPair {
  TcpListener listener{HostPort{"127.0.0.1", 0}};
  int client = -1;
  int server = -1;

  TcpPair() {
    client = tcp_connect(listener.bound(), 2000);
    for (int i = 0; i < 200 && server < 0; ++i) {
      auto accepted = listener.accept_pending();
      if (!accepted.empty()) {
        server = accepted[0].first;
        break;
      }
      ::usleep(5000);
    }
  }
  ~TcpPair() {
    if (client >= 0) ::close(client);
    if (server >= 0) ::close(server);
  }
};

std::string frame_bytes(dist::MsgType type, const std::string& payload) {
  std::string out;
  dist::append_frame(out, type, payload);
  return out;
}

TEST(Tcp, DecoderHandlesByteAtATimeDelivery) {
  TcpPair pair;
  ASSERT_GE(pair.server, 0);
  const std::string wire =
      frame_bytes(dist::MsgType::kHello, "a") +
      frame_bytes(dist::MsgType::kJobResult, std::string(300, 'b')) +
      frame_bytes(dist::MsgType::kShutdown, "");

  dist::FrameDecoder decoder;
  std::vector<dist::Frame> frames;
  char byte;
  for (const char c : wire) {
    // One byte through the real socket per turn — the worst segmentation
    // TCP can legally deliver.
    ASSERT_EQ(::send(pair.client, &c, 1, 0), 1);
    ASSERT_EQ(::recv(pair.server, &byte, 1, MSG_WAITALL), 1);
    decoder.feed(&byte, 1);
    while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, dist::MsgType::kHello);
  EXPECT_EQ(frames[1].payload, std::string(300, 'b'));
  EXPECT_EQ(frames[2].type, dist::MsgType::kShutdown);
}

TEST(Tcp, DecoderSurvivesFuzzedPartialChunksOverSocket) {
  // Seeded fuzz: random frame sizes cut into random chunk lengths, shipped
  // through a real TCP stream and re-assembled. Every frame must come out
  // intact and in order, regardless of segmentation.
  std::mt19937 rng(20170605);
  TcpPair pair;
  ASSERT_GE(pair.server, 0);

  std::vector<std::string> payloads;
  std::string wire;
  std::uniform_int_distribution<int> size_dist(0, 4000);
  for (int i = 0; i < 40; ++i) {
    std::string payload(static_cast<std::size_t>(size_dist(rng)), '\0');
    for (char& c : payload) c = static_cast<char>(rng() & 0xff);
    payloads.push_back(payload);
    wire += frame_bytes(dist::MsgType::kJobResult, payload);
  }

  std::thread sender([&] {
    std::mt19937 chunk_rng(7);
    std::uniform_int_distribution<std::size_t> chunk_dist(1, 977);
    std::size_t at = 0;
    while (at < wire.size()) {
      const std::size_t n = std::min(chunk_dist(chunk_rng), wire.size() - at);
      ASSERT_EQ(::send(pair.client, wire.data() + at, n, 0),
                static_cast<ssize_t>(n));
      at += n;
    }
    ::shutdown(pair.client, SHUT_WR);
  });

  dist::FrameDecoder decoder;
  std::vector<dist::Frame> frames;
  char buffer[1024];
  for (;;) {
    const ssize_t n = ::recv(pair.server, buffer, sizeof(buffer), 0);
    ASSERT_GE(n, 0);
    if (n == 0) break;
    decoder.feed(buffer, static_cast<std::size_t>(n));
    while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  }
  sender.join();

  ASSERT_EQ(frames.size(), payloads.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].payload, payloads[i]) << "frame " << i;
  }
}

// -------------------------------------------- worker handshake over TCP ---

TEST(Tcp, WorkerHandshakeVersionMismatchOverTcp) {
  TcpPair pair;
  ASSERT_GE(pair.server, 0);

  int exit_code = -1;
  std::thread worker([&] {
    dist::WorkerOptions options;
    options.fd = pair.client;
    options.threads = 1;
    exit_code = dist::run_worker(options);
  });

  // Coordinator side: the Hello and WorkerInfo arrive over real TCP, then
  // the ack claims a future protocol version — the worker must refuse.
  const auto hello = dist::read_frame(pair.server);
  ASSERT_TRUE(hello.has_value());
  ASSERT_EQ(hello->type, dist::MsgType::kHello);
  const auto info = dist::read_frame(pair.server);
  ASSERT_TRUE(info.has_value());
  ASSERT_EQ(info->type, dist::MsgType::kWorkerInfo);
  const dist::WorkerInfoMsg identity =
      dist::decode_worker_info(info->payload);
  EXPECT_FALSE(identity.host.empty());
  dist::WireWriter bad_ack;
  bad_ack.put_u32(dist::kProtocolVersion + 1);
  dist::write_frame(pair.server, dist::MsgType::kHelloAck, bad_ack.take());

  worker.join();
  EXPECT_EQ(exit_code, 2);
}

// --------------------------------------------------- WorkerPool over TCP ---

/// Runs the real sweep worker loop against a TCP endpoint in a thread.
struct TcpWorkerThread {
  std::thread thread;
  int exit_code = -1;

  explicit TcpWorkerThread(const HostPort& address) {
    thread = std::thread([this, address] {
      const int fd = tcp_connect_retry(address, 2000, 5000);
      dist::WorkerOptions options;
      options.fd = fd;
      options.threads = 1;
      exit_code = dist::run_worker(options);
      ::close(fd);
    });
  }
  ~TcpWorkerThread() {
    if (thread.joinable()) thread.join();
  }
};

TEST(WorkerPool, AdmitsTcpWorkerAfterFullHandshake) {
  TcpServerTransport transport(HostPort{"127.0.0.1", 0});
  WorkerPool::Options options;
  options.transport = &transport;
  options.expected_schema =
      static_cast<std::uint32_t>(exp::kSweepSchemaVersion);

  std::size_t admitted = 0;
  WorkerPool pool(options, {});
  WorkerPool::Hooks hooks;
  hooks.on_admitted = [&](PoolWorker& worker) {
    ++admitted;
    EXPECT_FALSE(worker.host.empty());
    EXPECT_GT(worker.remote_pid, 0u);
    EXPECT_EQ(worker.remote_threads, 1u);
    pool.send_shutdown(worker);
  };
  pool.set_hooks(std::move(hooks));

  TcpWorkerThread worker(transport.bound());
  for (int i = 0; i < 500 && (admitted == 0 || pool.live() > 0); ++i) {
    pool.poll_once(20);
  }
  EXPECT_EQ(admitted, 1u);
  EXPECT_EQ(pool.live(), 0u);
  worker.thread.join();
  EXPECT_EQ(worker.exit_code, 0);

  const std::vector<WorkerSummary> summaries = pool.summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_FALSE(summaries[0].lost);
  EXPECT_GT(summaries[0].bytes_in, 0u);
  EXPECT_GT(summaries[0].bytes_out, 0u);
}

TEST(WorkerPool, WrongSchemaPeerIsRejectedNotAdmitted) {
  TcpServerTransport transport(HostPort{"127.0.0.1", 0});
  WorkerPool::Options options;
  options.transport = &transport;
  options.expected_schema = 12345;  // nothing legitimate presents this
  options.admission_budget = 8;

  std::size_t admitted = 0;
  WorkerPool pool(options, {});
  WorkerPool::Hooks hooks;
  hooks.on_admitted = [&](PoolWorker&) { ++admitted; };
  pool.set_hooks(std::move(hooks));

  // The real worker presents the sweep schema — a version-skewed build.
  TcpWorkerThread worker(transport.bound());
  for (int i = 0; i < 500 && pool.live() == 0; ++i) pool.poll_once(20);
  for (int i = 0; i < 500 && pool.live() > 0; ++i) pool.poll_once(20);
  EXPECT_EQ(admitted, 0u);
  EXPECT_EQ(pool.live(), 0u);
  worker.thread.join();
  // The pool drops a rejected peer without a reply; the worker sees EOF
  // while awaiting its ack and treats it as a vanished coordinator (0).
  EXPECT_EQ(worker.exit_code, 0);
  EXPECT_TRUE(pool.summaries().empty());
}

TEST(WorkerPool, JunkConnectionsExhaustAdmissionBudget) {
  TcpServerTransport transport(HostPort{"127.0.0.1", 0});
  WorkerPool::Options options;
  options.transport = &transport;
  options.expected_schema =
      static_cast<std::uint32_t>(exp::kSweepSchemaVersion);
  options.admission_budget = 3;

  WorkerPool pool(options, {});

  // Peers that connect and hang up before the handshake: each one charges
  // the budget; the fourth pushes past it and poll_once throws.
  bool threw = false;
  for (int round = 0; round < 8 && !threw; ++round) {
    const int fd = tcp_connect(transport.bound(), 2000);
    ::close(fd);
    try {
      for (int i = 0; i < 200 && pool.live() == 0; ++i) pool.poll_once(10);
      for (int i = 0; i < 200 && pool.live() > 0; ++i) pool.poll_once(10);
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_NE(std::string(e.what()).find("admission"), std::string::npos)
          << e.what();
    }
  }
  EXPECT_TRUE(threw);
}

TEST(WorkerPool, LostWorkerFiresOnLostWithTagIntact) {
  TcpServerTransport transport(HostPort{"127.0.0.1", 0});
  WorkerPool::Options options;
  options.transport = &transport;
  options.expected_schema = 77;

  std::ptrdiff_t lost_tag = -100;
  WorkerPool pool(options, {});
  WorkerPool::Hooks hooks;
  hooks.on_admitted = [&](PoolWorker& worker) { worker.user_tag = 42; };
  hooks.on_lost = [&](PoolWorker& worker) { lost_tag = worker.user_tag; };
  pool.set_hooks(std::move(hooks));

  // Hand-rolled peer: complete the handshake (schema 77), then vanish.
  std::thread peer([&] {
    const int fd = tcp_connect_retry(transport.bound(), 2000, 5000);
    dist::HelloMsg hello;
    hello.schema = 77;
    dist::write_frame(fd, dist::MsgType::kHello, dist::encode_hello(hello));
    dist::WorkerInfoMsg info;
    info.host = "testhost";
    info.pid = 1234;
    info.threads = 2;
    dist::write_frame(fd, dist::MsgType::kWorkerInfo,
                      dist::encode_worker_info(info));
    const auto ack = dist::read_frame(fd);
    EXPECT_TRUE(ack.has_value());
    ::close(fd);  // SIGKILL stand-in: gone with an assignment in flight
  });

  for (int i = 0; i < 500 && lost_tag == -100; ++i) pool.poll_once(20);
  peer.join();
  EXPECT_EQ(lost_tag, 42);

  const std::vector<WorkerSummary> summaries = pool.summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_TRUE(summaries[0].lost);
  EXPECT_TRUE(summaries[0].lost_in_flight);
  EXPECT_EQ(summaries[0].host, "testhost");
  EXPECT_EQ(summaries[0].remote_pid, 1234u);
}

}  // namespace
}  // namespace ncb::net
