#include "core/nonstationary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dfl_sso.hpp"
#include "graph/generators.hpp"
#include "sim/piecewise.hpp"

namespace ncb {
namespace {

TEST(SwDflSso, WindowEvictsOldSamples) {
  SwDflSso policy(SwDflSsoOptions{.window = 3});
  policy.reset(empty_graph(2));
  policy.observe(0, 1, {{0, 1.0}});
  policy.observe(0, 2, {{0, 1.0}});
  policy.observe(0, 3, {{0, 0.0}});
  EXPECT_EQ(policy.window_count(0), 3);
  EXPECT_NEAR(policy.window_mean(0), 2.0 / 3.0, 1e-12);
  // Slot 4: the slot-1 sample (slot <= 4-3) leaves the window.
  policy.observe(0, 4, {{0, 0.0}});
  EXPECT_EQ(policy.window_count(0), 3);
  EXPECT_NEAR(policy.window_mean(0), 1.0 / 3.0, 1e-12);
}

TEST(SwDflSso, ForgetsCompletely) {
  SwDflSso policy(SwDflSsoOptions{.window = 2});
  policy.reset(empty_graph(2));
  policy.observe(0, 1, {{0, 1.0}});
  // No observations of arm 0 afterwards; by slot 10 it is unknown again.
  policy.observe(1, 10, {{1, 0.5}});
  EXPECT_EQ(policy.window_count(0), 0);
  EXPECT_TRUE(std::isinf(policy.index(0, 10)));
}

TEST(SwDflSso, ValidatesWindow) {
  EXPECT_THROW(SwDflSso(SwDflSsoOptions{.window = 0}), std::invalid_argument);
}

TEST(SwDflSso, NameMentionsWindow) {
  SwDflSso policy(SwDflSsoOptions{.window = 500});
  EXPECT_EQ(policy.name(), "SW-DFL-SSO(w=500)");
}

TEST(DiscountedDflSso, CountsDecayGeometrically) {
  DiscountedDflSso policy(DiscountedDflSsoOptions{.discount = 0.5});
  policy.reset(empty_graph(2));
  policy.observe(0, 1, {{0, 1.0}});
  EXPECT_NEAR(policy.discounted_count(0), 1.0, 1e-12);
  policy.observe(1, 2, {{1, 0.5}});  // arm 0 decays, no new sample
  EXPECT_NEAR(policy.discounted_count(0), 0.5, 1e-12);
  policy.observe(1, 3, {{1, 0.5}});
  EXPECT_NEAR(policy.discounted_count(0), 0.25, 1e-12);
}

TEST(DiscountedDflSso, MeanTracksRecentValues) {
  DiscountedDflSso policy(DiscountedDflSsoOptions{.discount = 0.5});
  policy.reset(empty_graph(1));
  // Long run of 0s then a 1: discounted mean leans heavily to the 1.
  for (TimeSlot t = 1; t <= 10; ++t) policy.observe(0, t, {{0, 0.0}});
  policy.observe(0, 11, {{0, 1.0}});
  EXPECT_GT(policy.discounted_mean(0), 0.49);
}

TEST(DiscountedDflSso, GammaOneIsPlainAverage) {
  DiscountedDflSso policy(DiscountedDflSsoOptions{.discount = 1.0});
  policy.reset(empty_graph(1));
  policy.observe(0, 1, {{0, 1.0}});
  policy.observe(0, 2, {{0, 0.0}});
  EXPECT_NEAR(policy.discounted_mean(0), 0.5, 1e-12);
  EXPECT_THROW(DiscountedDflSso(DiscountedDflSsoOptions{.discount = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(DiscountedDflSso(DiscountedDflSsoOptions{.discount = 1.5}),
               std::invalid_argument);
}

TEST(PiecewiseInstance, PhaseLookup) {
  std::vector<BanditInstance> phases;
  phases.push_back(bernoulli_instance(path_graph(3), {0.9, 0.1, 0.1}));
  phases.push_back(bernoulli_instance(path_graph(3), {0.1, 0.1, 0.9}));
  const PiecewiseInstance pw(std::move(phases), {100});
  EXPECT_EQ(pw.num_phases(), 2u);
  EXPECT_EQ(pw.phase_index(1), 0u);
  EXPECT_EQ(pw.phase_index(100), 0u);
  EXPECT_EQ(pw.phase_index(101), 1u);
  EXPECT_EQ(pw.phase_at(50).best_arm(), 0);
  EXPECT_EQ(pw.phase_at(150).best_arm(), 2);
}

TEST(PiecewiseInstance, Validation) {
  std::vector<BanditInstance> one;
  one.push_back(bernoulli_instance(path_graph(2), {0.5, 0.5}));
  EXPECT_NO_THROW(PiecewiseInstance(std::move(one), {}));

  std::vector<BanditInstance> two;
  two.push_back(bernoulli_instance(path_graph(2), {0.5, 0.5}));
  two.push_back(bernoulli_instance(path_graph(2), {0.5, 0.5}));
  EXPECT_THROW(PiecewiseInstance(std::move(two), {}), std::invalid_argument);

  std::vector<BanditInstance> mismatched;
  mismatched.push_back(bernoulli_instance(path_graph(2), {0.5, 0.5}));
  mismatched.push_back(bernoulli_instance(path_graph(3), {0.5, 0.5, 0.5}));
  EXPECT_THROW(PiecewiseInstance(std::move(mismatched), {10}),
               std::invalid_argument);
}

TEST(PiecewiseRun, AccountingConsistent) {
  std::vector<BanditInstance> phases;
  phases.push_back(bernoulli_instance(path_graph(4), {0.9, 0.2, 0.2, 0.2}));
  phases.push_back(bernoulli_instance(path_graph(4), {0.2, 0.2, 0.2, 0.9}));
  const PiecewiseInstance pw(std::move(phases), {200});
  SwDflSso policy(SwDflSsoOptions{.window = 100});
  const auto result =
      run_single_play_piecewise(policy, pw, Scenario::kSso, 400, 7);
  ASSERT_EQ(result.per_slot_regret.size(), 400u);
  double running = 0.0;
  for (std::size_t t = 0; t < 400; ++t) {
    running += result.per_slot_regret[t];
    ASSERT_NEAR(result.cumulative_regret[t], running, 1e-9);
    ASSERT_GE(result.per_slot_pseudo_regret[t], -1e-12);
  }
  EXPECT_NEAR(result.optimal_per_slot, 0.9, 1e-9);
}

TEST(PiecewiseRun, SlidingWindowAdaptsAfterBreakpoint) {
  // Phase 1 favors arm 0; phase 2 favors arm 4 (disconnected arms so no
  // side help). The windowed policy must recover in phase 2 where the
  // stationary policy keeps exploiting the stale optimum far longer.
  std::vector<BanditInstance> phases;
  phases.push_back(
      bernoulli_instance(empty_graph(5), {0.9, 0.3, 0.3, 0.3, 0.1}));
  phases.push_back(
      bernoulli_instance(empty_graph(5), {0.1, 0.3, 0.3, 0.3, 0.9}));
  const PiecewiseInstance pw(std::move(phases), {1500});

  SwDflSso sw(SwDflSsoOptions{.window = 300, .seed = 11});
  DflSso plain(DflSsoOptions{.seed = 11});
  const auto sw_result =
      run_single_play_piecewise(sw, pw, Scenario::kSso, 3000, 5);
  const auto plain_result =
      run_single_play_piecewise(plain, pw, Scenario::kSso, 3000, 5);
  // Compare regret accumulated after the breakpoint.
  const double sw_tail =
      sw_result.cumulative_regret.back() - sw_result.cumulative_regret[1499];
  const double plain_tail = plain_result.cumulative_regret.back() -
                            plain_result.cumulative_regret[1499];
  EXPECT_LT(sw_tail, plain_tail);
}

TEST(PiecewiseRun, RejectsCombinatorialScenario) {
  std::vector<BanditInstance> phases;
  phases.push_back(bernoulli_instance(path_graph(2), {0.5, 0.5}));
  const PiecewiseInstance pw(std::move(phases), {});
  DflSso policy;
  EXPECT_THROW(
      (void)run_single_play_piecewise(policy, pw, Scenario::kCso, 10, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace ncb
