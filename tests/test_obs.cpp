// Unit tests for the src/obs/ metrics layer: instrument semantics, stable
// registry references, snapshot rendering (JSON / Prometheus / flattened
// wire entries), agreement between obs::Histogram and the LatencyHistogram
// bucket math it reuses, ScopedTimer, concurrent counter exactness, and
// the StatsReply wire round trip. Mutation-observing tests GTEST_SKIP
// under NCB_NO_METRICS, where every increment compiles to a no-op.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/histogram.hpp"

namespace ncb::obs {
namespace {

#ifdef NCB_NO_METRICS
#define REQUIRE_METRICS() \
  GTEST_SKIP() << "mutations are no-ops under NCB_NO_METRICS"
#else
#define REQUIRE_METRICS() \
  do {                    \
  } while (0)
#endif

TEST(Counter, StartsAtZeroAndAccumulates) {
  REQUIRE_METRICS();
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAddAndNegativeValues) {
  REQUIRE_METRICS();
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.set(10);
  gauge.add(-25);
  EXPECT_EQ(gauge.value(), -15);
}

TEST(Histogram, EmptyStatsAreAllZero) {
  Histogram histogram;
  const HistogramStats stats = histogram.stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.max, 0u);
  EXPECT_EQ(stats.p50, 0u);
  EXPECT_EQ(stats.p99, 0u);
  EXPECT_EQ(stats.p999, 0u);
}

TEST(Histogram, AgreesWithLatencyHistogramQuantiles) {
  REQUIRE_METRICS();
  // Same stream into both implementations: the obs histogram borrows the
  // LatencyHistogram bucket layout, so the quantiles must match exactly.
  Histogram ours;
  LatencyHistogram reference;
  for (std::uint64_t i = 1; i <= 10000; ++i) {
    const std::uint64_t v = (i * 2654435761ULL) % 1000000;
    ours.record(v);
    reference.record(v);
  }
  const HistogramStats stats = ours.stats();
  EXPECT_EQ(stats.count, reference.count());
  EXPECT_EQ(stats.max, reference.max());
  EXPECT_EQ(stats.p50, reference.p50());
  EXPECT_EQ(stats.p99, reference.p99());
  EXPECT_EQ(stats.p999, reference.p999());
}

TEST(Histogram, MaxIsExactNotBucketRounded) {
  REQUIRE_METRICS();
  Histogram histogram;
  histogram.record(1000003);  // not a bucket boundary
  EXPECT_EQ(histogram.stats().max, 1000003u);
  EXPECT_EQ(histogram.stats().count, 1u);
}

TEST(MetricsRegistry, ReferencesAreStableAndDeduplicated) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.events");
  Counter& b = registry.counter("x.events");
  EXPECT_EQ(&a, &b);
  // Kind namespaces are independent: a gauge may share a counter's name.
  Gauge& g = registry.gauge("x.events");
  EXPECT_NE(static_cast<void*>(&g), static_cast<void*>(&a));
  Histogram& h1 = registry.histogram("x.lat");
  Histogram& h2 = registry.histogram("x.lat");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  REQUIRE_METRICS();
  MetricsRegistry registry;
  registry.counter("z.last").inc(3);
  registry.counter("a.first").inc(1);
  registry.counter("m.middle").inc(2);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "a.first");
  EXPECT_EQ(snapshot.counters[1].first, "m.middle");
  EXPECT_EQ(snapshot.counters[2].first, "z.last");
  EXPECT_EQ(snapshot.counters[2].second, 3u);
}

TEST(MetricsSnapshot, RenderJsonCarriesSchemaAndValues) {
  REQUIRE_METRICS();
  MetricsRegistry registry;
  registry.counter("serve.decide.requests").inc(7);
  registry.gauge("serve.connections.active").set(-2);
  registry.histogram("serve.decide.latency_us").record(100);
  const std::string json = registry.snapshot().render_json();
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"serve.decide.requests\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"serve.connections.active\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"serve.decide.latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  // Byte-determinism: rendering the same state twice is identical.
  EXPECT_EQ(json, registry.snapshot().render_json());
}

TEST(MetricsSnapshot, RenderPrometheusUsesNcbPrefix) {
  REQUIRE_METRICS();
  MetricsRegistry registry;
  registry.counter("dist.jobs.completed").inc(5);
  registry.histogram("serve.decide.latency_us").record(50);
  const std::string text = registry.snapshot().render_prometheus();
  EXPECT_NE(text.find("# TYPE ncb_dist_jobs_completed counter"),
            std::string::npos);
  EXPECT_NE(text.find("ncb_dist_jobs_completed 5"), std::string::npos);
  EXPECT_NE(text.find("ncb_serve_decide_latency_us_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
}

TEST(MetricsSnapshot, FlattenKindsAndHistogramSuffixes) {
  REQUIRE_METRICS();
  MetricsRegistry registry;
  registry.counter("c").inc(1);
  registry.gauge("g").set(-4);
  registry.histogram("h").record(10);
  const std::vector<StatEntry> entries = registry.snapshot().flatten();
  // Counters, then gauges, then 5 derived scalars per histogram.
  ASSERT_EQ(entries.size(), 1u + 1u + 5u);
  EXPECT_EQ(entries[0].kind, kStatCounter);
  EXPECT_EQ(entries[0].name, "c");
  EXPECT_EQ(entries[0].value, 1u);
  EXPECT_EQ(entries[1].kind, kStatGauge);
  EXPECT_EQ(static_cast<std::int64_t>(entries[1].value), -4);
  const char* suffixes[] = {".count", ".max", ".p50", ".p99", ".p999"};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(entries[2 + i].kind, kStatHistogram);
    EXPECT_EQ(entries[2 + i].name, std::string("h") + suffixes[i]);
  }
  EXPECT_EQ(entries[2].value, 1u);  // h.count
}

TEST(MetricsSnapshot, StatsReplyWireRoundTrip) {
  REQUIRE_METRICS();
  MetricsRegistry registry;
  registry.counter("c").inc(3);
  registry.gauge("g").set(-1);
  registry.histogram("h").record(99);
  dist::StatsReplyMsg msg;
  for (const StatEntry& entry : registry.snapshot().flatten()) {
    msg.entries.push_back({entry.kind, entry.name, entry.value});
  }
  const dist::StatsReplyMsg decoded =
      dist::decode_stats_reply(dist::encode_stats_reply(msg));
  ASSERT_EQ(decoded.entries.size(), msg.entries.size());
  for (std::size_t i = 0; i < msg.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].kind, msg.entries[i].kind);
    EXPECT_EQ(decoded.entries[i].name, msg.entries[i].name);
    EXPECT_EQ(decoded.entries[i].value, msg.entries[i].value);
  }
}

TEST(ScopedTimer, RecordsOneSampleOnDestruction) {
  REQUIRE_METRICS();
  Histogram histogram;
  {
    const ScopedTimer timer(histogram);
  }
  EXPECT_EQ(histogram.stats().count, 1u);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  REQUIRE_METRICS();
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace ncb::obs
