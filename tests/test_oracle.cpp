#include "strategy/oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

std::shared_ptr<const Graph> shared_graph(Graph g) {
  return std::make_shared<const Graph>(std::move(g));
}

TEST(CoverageValue, HandComputed) {
  const auto family = make_subset_family(shared_graph(path_graph(4)), 2);
  const std::vector<double> scores{1.0, 2.0, 4.0, 8.0};
  // Strategy {0}: Y = {0,1} → 3. Strategy {0,3}: Y = {0,1,2,3} → 15.
  const auto id0 = family.find({0});
  const auto id03 = family.find({0, 3});
  ASSERT_TRUE(id0 && id03);
  EXPECT_DOUBLE_EQ(coverage_value(family, *id0, scores), 3.0);
  EXPECT_DOUBLE_EQ(coverage_value(family, *id03, scores), 15.0);
}

TEST(ModularValue, HandComputed) {
  const auto family = make_subset_family(shared_graph(path_graph(4)), 2);
  const std::vector<double> scores{1.0, 2.0, 4.0, 8.0};
  const auto id13 = family.find({1, 3});
  ASSERT_TRUE(id13);
  EXPECT_DOUBLE_EQ(modular_value(family, *id13, scores), 10.0);
}

TEST(ExactCoverageOracle, PicksArgmax) {
  const auto family = make_subset_family(shared_graph(path_graph(4)), 2);
  const ExactCoverageOracle oracle;
  const std::vector<double> scores{1.0, 2.0, 4.0, 8.0};
  const StrategyId best = oracle.select(family, scores);
  // Full coverage {0,1,2,3} is reachable (e.g. {0,2}, {0,3}, {1,3}), value 15.
  EXPECT_DOUBLE_EQ(coverage_value(family, best, scores), 15.0);
}

TEST(ExactCoverageOracle, SizeMismatchThrows) {
  const auto family = make_subset_family(shared_graph(path_graph(4)), 2);
  const ExactCoverageOracle oracle;
  EXPECT_THROW(static_cast<void>(oracle.select(family, {1.0})),
               std::invalid_argument);
}

TEST(ExactCoverageOracle, MatchesBruteForceOnRandomInstances) {
  Xoshiro256 rng(31);
  const ExactCoverageOracle oracle;
  for (int trial = 0; trial < 10; ++trial) {
    const auto family =
        make_subset_family(shared_graph(erdos_renyi(8, 0.4, rng)), 2);
    std::vector<double> scores(8);
    for (auto& s : scores) s = rng.uniform();
    const StrategyId chosen = oracle.select(family, scores);
    double best = -1.0;
    for (StrategyId x = 0; x < static_cast<StrategyId>(family.size()); ++x) {
      best = std::max(best, coverage_value(family, x, scores));
    }
    EXPECT_NEAR(coverage_value(family, chosen, scores), best, 1e-12);
  }
}

TEST(ArgmaxModular, MatchesBruteForce) {
  Xoshiro256 rng(37);
  const auto family =
      make_subset_family(shared_graph(erdos_renyi(9, 0.3, rng)), 3);
  std::vector<double> scores(9);
  for (auto& s : scores) s = rng.uniform();
  const StrategyId chosen = argmax_modular(family, scores);
  double best = -1.0;
  for (StrategyId x = 0; x < static_cast<StrategyId>(family.size()); ++x) {
    best = std::max(best, modular_value(family, x, scores));
  }
  EXPECT_NEAR(modular_value(family, chosen, scores), best, 1e-12);
}

TEST(GreedyCoverageOracle, ExactOnModularCase) {
  // Empty graph: coverage is modular, greedy is optimal.
  const auto family = make_subset_family(shared_graph(empty_graph(6)), 2);
  const GreedyCoverageOracle greedy;
  const ExactCoverageOracle exact;
  const std::vector<double> scores{0.1, 0.9, 0.3, 0.8, 0.2, 0.5};
  const StrategyId g = greedy.select(family, scores);
  const StrategyId e = exact.select(family, scores);
  EXPECT_DOUBLE_EQ(coverage_value(family, g, scores),
                   coverage_value(family, e, scores));
}

TEST(GreedyCoverageOracle, RequiresSubsetFamily) {
  const auto family = make_independent_set_family(shared_graph(path_graph(4)));
  const GreedyCoverageOracle greedy;
  EXPECT_THROW(static_cast<void>(greedy.select(family, {1, 1, 1, 1})),
               std::invalid_argument);
}

TEST(GreedyCoverageOracle, ApproximationGuaranteeHolds) {
  Xoshiro256 rng(41);
  const GreedyCoverageOracle greedy;
  const ExactCoverageOracle exact;
  for (int trial = 0; trial < 10; ++trial) {
    const auto family =
        make_subset_family(shared_graph(erdos_renyi(10, 0.3, rng)), 3);
    std::vector<double> scores(10);
    for (auto& s : scores) s = rng.uniform();
    const double g = coverage_value(family, greedy.select(family, scores), scores);
    const double e = coverage_value(family, exact.select(family, scores), scores);
    EXPECT_GE(g, (1.0 - 1.0 / std::exp(1.0)) * e - 1e-9);
    EXPECT_LE(g, e + 1e-12);
  }
}

TEST(GreedyCoverageOracle, ExactSizeFamilyFillsUp) {
  const auto family =
      make_subset_family(shared_graph(empty_graph(5)), 3, /*exact=*/true);
  const GreedyCoverageOracle greedy;
  const StrategyId x = greedy.select(family, {0.5, 0.4, 0.3, 0.2, 0.1});
  EXPECT_EQ(family.strategy(x).size(), 3u);
  EXPECT_EQ(family.strategy(x), (ArmSet{0, 1, 2}));
}

TEST(GreedyCoverageOracle, NegativeScoresClamped) {
  const auto family = make_subset_family(shared_graph(empty_graph(4)), 2);
  const GreedyCoverageOracle greedy;
  // All-negative scores: greedy still returns a valid strategy.
  const StrategyId x = greedy.select(family, {-1.0, -2.0, -3.0, -4.0});
  EXPECT_LT(x, static_cast<StrategyId>(family.size()));
  EXPECT_GE(x, 0);
}

TEST(Oracles, TieBreaksDeterministically) {
  const auto family = make_subset_family(shared_graph(empty_graph(3)), 1);
  const ExactCoverageOracle oracle;
  // All equal scores: smallest strategy id wins.
  EXPECT_EQ(oracle.select(family, {0.5, 0.5, 0.5}), 0);
  EXPECT_EQ(argmax_modular(family, {0.5, 0.5, 0.5}), 0);
}

}  // namespace
}  // namespace ncb
