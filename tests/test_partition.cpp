#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace ncb {
namespace {

TEST(DefaultDelta0, PaperFormula) {
  // δ0 = α·sqrt(K/n) with α = e.
  const double expected = std::exp(1.0) * std::sqrt(100.0 / 10000.0);
  EXPECT_NEAR(default_delta0(100, 10000), expected, 1e-12);
}

TEST(DefaultDelta0, CustomAlpha) {
  EXPECT_NEAR(default_delta0(4, 400, 2.0), 2.0 * 0.1, 1e-12);
}

TEST(DefaultDelta0, RejectsBadArguments) {
  EXPECT_THROW((void)default_delta0(0, 100), std::invalid_argument);
  EXPECT_THROW((void)default_delta0(10, 0), std::invalid_argument);
}

TEST(GapsFromMeans, BestArmHasZeroGap) {
  const auto gaps = gaps_from_means({0.2, 0.9, 0.5});
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_NEAR(gaps[0], 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(gaps[1], 0.0);
  EXPECT_NEAR(gaps[2], 0.4, 1e-12);
}

TEST(GapsFromMeans, EmptyInput) {
  EXPECT_TRUE(gaps_from_means({}).empty());
}

TEST(ThresholdPartition, SplitsByDelta0) {
  const Graph g = path_graph(5);
  const std::vector<double> gaps{0.0, 0.05, 0.3, 0.5, 0.7};
  const auto part = threshold_partition(g, gaps, 0.1);
  EXPECT_EQ(part.k1, (ArmSet{0, 1}));
  EXPECT_EQ(part.k2, (ArmSet{2, 3, 4}));
  EXPECT_EQ(part.subgraph_h.num_vertices(), 3u);
  // Vertices 2-3-4 form a sub-path: edges (2,3),(3,4) survive.
  EXPECT_EQ(part.subgraph_h.num_edges(), 2u);
  EXPECT_EQ(part.h_to_original, (ArmSet{2, 3, 4}));
}

TEST(ThresholdPartition, CoverIsValidOnH) {
  Xoshiro256 rng(9);
  const Graph g = erdos_renyi(30, 0.4, rng);
  std::vector<double> gaps(30);
  for (auto& d : gaps) d = rng.uniform();
  const auto part = threshold_partition(g, gaps, 0.5);
  EXPECT_TRUE(is_valid_clique_cover(part.subgraph_h, part.cover));
  EXPECT_EQ(part.k1.size() + part.k2.size(), 30u);
  EXPECT_EQ(part.clique_cover_size(), part.cover.size());
}

TEST(ThresholdPartition, AllArmsBelowThreshold) {
  const Graph g = complete_graph(4);
  const auto part = threshold_partition(g, {0.0, 0.0, 0.0, 0.0}, 0.5);
  EXPECT_EQ(part.k1.size(), 4u);
  EXPECT_TRUE(part.k2.empty());
  EXPECT_EQ(part.subgraph_h.num_vertices(), 0u);
  EXPECT_TRUE(part.cover.empty());
}

TEST(ThresholdPartition, AllArmsAboveThreshold) {
  const Graph g = complete_graph(4);
  const auto part = threshold_partition(g, {0.9, 0.8, 0.7, 0.6}, 0.1);
  EXPECT_TRUE(part.k1.empty());
  EXPECT_EQ(part.k2.size(), 4u);
  EXPECT_EQ(part.cover.size(), 1u);  // complete subgraph = one clique
}

TEST(ThresholdPartition, MismatchedSizesThrow) {
  const Graph g = path_graph(3);
  EXPECT_THROW(threshold_partition(g, {0.1, 0.2}, 0.5), std::invalid_argument);
}

TEST(ThresholdPartition, BoundaryGapGoesToK1) {
  // Gap exactly equal to δ0 belongs to K1 (∆ ≤ δ0).
  const Graph g = path_graph(2);
  const auto part = threshold_partition(g, {0.5, 0.6}, 0.5);
  EXPECT_EQ(part.k1, (ArmSet{0}));
  EXPECT_EQ(part.k2, (ArmSet{1}));
}

}  // namespace
}  // namespace ncb
