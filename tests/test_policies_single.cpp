#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/dfl_sso.hpp"
#include "core/epsilon_greedy.hpp"
#include "core/exp3.hpp"
#include "core/moss.hpp"
#include "core/policy_factory.hpp"
#include "core/random_policy.hpp"
#include "core/thompson.hpp"
#include "core/ucb1.hpp"
#include "core/ucb_n.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"

namespace ncb {
namespace {

std::vector<Observation> closed_obs(const Graph& g, ArmId played,
                                    const std::vector<double>& values) {
  std::vector<Observation> out;
  for (const ArmId j : g.closed_neighborhood(played)) {
    out.push_back({j, values[static_cast<std::size_t>(j)]});
  }
  return out;
}

TEST(DflSso, ExploresUnobservedArmsFirst) {
  const Graph g = empty_graph(4);
  DflSso policy;
  policy.reset(g);
  std::set<ArmId> chosen;
  for (TimeSlot t = 1; t <= 4; ++t) {
    const ArmId a = policy.select(t);
    chosen.insert(a);
    policy.observe(a, t, {{a, 0.5}});
  }
  EXPECT_EQ(chosen.size(), 4u);  // all arms tried once
}

TEST(DflSso, SideObservationsUpdateNeighbors) {
  const Graph g = star_graph(4);
  DflSso policy;
  policy.reset(g);
  // Playing the hub observes everyone.
  policy.observe(0, 1, closed_obs(g, 0, {0.5, 0.6, 0.7, 0.8}));
  for (ArmId i = 0; i < 4; ++i) {
    EXPECT_EQ(policy.observation_count(i), 1) << "arm " << i;
  }
  EXPECT_DOUBLE_EQ(policy.empirical_mean(2), 0.7);
}

TEST(DflSso, IndexFormulaHandComputed) {
  const Graph g = empty_graph(2);
  DflSso policy;
  policy.reset(g);
  policy.observe(0, 1, {{0, 1.0}});
  // O_0 = 1, X̄_0 = 1. Index at t = 2e² (so ratio = e², log = 2):
  // 1 + sqrt(2/1) = 1 + sqrt(2).
  const auto t = static_cast<TimeSlot>(std::ceil(2.0 * std::exp(2.0)));
  const double ratio = static_cast<double>(t) / 2.0;
  EXPECT_NEAR(policy.index(0, t), 1.0 + std::sqrt(std::log(ratio)), 1e-9);
  EXPECT_TRUE(std::isinf(policy.index(1, t)));
}

TEST(DflSso, IncrementalMeanMatchesBatch) {
  const Graph g = empty_graph(1);
  DflSso policy;
  policy.reset(g);
  const std::vector<double> values{0.3, 0.9, 0.1, 0.5, 0.7};
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    policy.observe(0, static_cast<TimeSlot>(i + 1), {{0, values[i]}});
    total += values[i];
  }
  EXPECT_NEAR(policy.empirical_mean(0),
              total / static_cast<double>(values.size()), 1e-12);
  EXPECT_EQ(policy.observation_count(0), 5);
}

TEST(DflSso, ResetClearsState) {
  const Graph g = empty_graph(2);
  DflSso policy;
  policy.reset(g);
  policy.observe(0, 1, {{0, 1.0}});
  policy.reset(g);
  EXPECT_EQ(policy.observation_count(0), 0);
  EXPECT_DOUBLE_EQ(policy.empirical_mean(0), 0.0);
}

TEST(DflSso, NeighborGreedyPlaysBestEmpiricalNeighbor) {
  // Star: hub 0 with mean 0.1, leaf 1 with mean 0.9 — once both observed,
  // the greedy variant redirects hub selections to the leaf.
  const Graph g = star_graph(3);
  DflSso policy(DflSsoOptions{.neighbor_greedy = true});
  policy.reset(g);
  // Feed identical history: hub bad, leaf 1 good, leaf 2 bad.
  for (TimeSlot t = 1; t <= 30; ++t) {
    policy.observe(0, t, closed_obs(g, 0, {0.1, 0.9, 0.2}));
  }
  // Whatever the index argmax is, the played arm must have the max
  // empirical mean within that arm's closed neighborhood; for the hub's
  // neighborhood that is leaf 1.
  const ArmId played = policy.select(31);
  EXPECT_EQ(played, 1);
  EXPECT_EQ(policy.name(), "DFL-SSO+greedy");
}

TEST(Moss, IgnoresSideObservations) {
  const Graph g = star_graph(3);
  Moss policy(MossOptions{.horizon = 100});
  policy.reset(g);
  policy.observe(0, 1, closed_obs(g, 0, {0.5, 0.9, 0.8}));
  EXPECT_EQ(policy.play_count(0), 1);
  EXPECT_EQ(policy.play_count(1), 0);
  EXPECT_EQ(policy.play_count(2), 0);
}

TEST(Moss, ThrowsWhenPlayedArmMissing) {
  Moss policy;
  policy.reset(empty_graph(2));
  EXPECT_THROW(policy.observe(0, 1, {{1, 0.5}}), std::logic_error);
}

TEST(Moss, FixedHorizonIndexUsesN) {
  Moss policy(MossOptions{.horizon = 10000});
  policy.reset(empty_graph(2));
  policy.observe(0, 1, {{0, 0.5}});
  // ratio = n/(K·T) = 10000/2 regardless of t.
  const double expected =
      0.5 + std::sqrt(std::log(10000.0 / 2.0) / 1.0);
  EXPECT_NEAR(policy.index(0, 1), expected, 1e-12);
  EXPECT_NEAR(policy.index(0, 9999), expected, 1e-12);
  EXPECT_EQ(policy.name(), "MOSS");
}

TEST(Moss, AnytimeIndexUsesT) {
  Moss policy;  // horizon 0 → anytime
  policy.reset(empty_graph(2));
  policy.observe(0, 1, {{0, 0.5}});
  EXPECT_LT(policy.index(0, 2), policy.index(0, 1000));
  EXPECT_EQ(policy.name(), "MOSS-anytime");
}

TEST(Ucb1, IndexFormula) {
  Ucb1 policy;
  policy.reset(empty_graph(3));
  policy.observe(1, 1, {{1, 0.6}});
  const double expected = 0.6 + std::sqrt(2.0 * std::log(100.0) / 1.0);
  EXPECT_NEAR(policy.index(1, 100), expected, 1e-12);
  EXPECT_TRUE(std::isinf(policy.index(0, 100)));
}

TEST(Ucb1, OnlyPlayedArmUpdates) {
  Ucb1 policy;
  policy.reset(star_graph(3));
  policy.observe(0, 1, {{0, 0.5}, {1, 0.9}, {2, 0.1}});
  EXPECT_EQ(policy.play_count(0), 1);
  EXPECT_EQ(policy.play_count(1), 0);
}

TEST(UcbN, ConsumesSideObservations) {
  const Graph g = star_graph(3);
  UcbN policy;
  policy.reset(g);
  policy.observe(0, 1, closed_obs(g, 0, {0.5, 0.9, 0.1}));
  EXPECT_EQ(policy.observation_count(0), 1);
  EXPECT_EQ(policy.observation_count(1), 1);
  EXPECT_EQ(policy.observation_count(2), 1);
  EXPECT_EQ(policy.name(), "UCB-N");
}

TEST(UcbMaxN, PlaysBestEmpiricalInNeighborhood) {
  const Graph g = star_graph(3);
  UcbN policy(UcbNOptions{.max_variant = true});
  policy.reset(g);
  for (TimeSlot t = 1; t <= 30; ++t) {
    policy.observe(0, t, closed_obs(g, 0, {0.1, 0.9, 0.2}));
  }
  EXPECT_EQ(policy.select(31), 1);
  EXPECT_EQ(policy.name(), "UCB-MaxN");
}

TEST(EpsilonGreedy, ZeroEpsilonIsPureGreedy) {
  EpsilonGreedy policy(EpsilonGreedyOptions{.epsilon = 0.0});
  policy.reset(empty_graph(3));
  // Visit all arms once (forced exploration).
  for (TimeSlot t = 1; t <= 3; ++t) {
    const ArmId a = policy.select(t);
    policy.observe(a, t, {{a, a == 1 ? 1.0 : 0.0}});
  }
  for (TimeSlot t = 4; t <= 20; ++t) {
    EXPECT_EQ(policy.select(t), 1);
  }
}

TEST(EpsilonGreedy, DecaySchedule) {
  EpsilonGreedyOptions opts;
  opts.decay = true;
  opts.c = 1.0;
  opts.d = 0.5;
  EpsilonGreedy policy(opts);
  policy.reset(empty_graph(10));
  EXPECT_DOUBLE_EQ(policy.epsilon_at(1), 1.0);  // clamped
  EXPECT_NEAR(policy.epsilon_at(1000), 1.0 * 10 / (0.25 * 1000), 1e-12);
  EXPECT_GT(policy.epsilon_at(100), policy.epsilon_at(10000));
}

TEST(EpsilonGreedy, SideObservationOptIn) {
  const Graph g = star_graph(3);
  EpsilonGreedyOptions opts;
  opts.use_side_observations = true;
  EpsilonGreedy with_side(opts);
  with_side.reset(g);
  with_side.observe(0, 1, closed_obs(g, 0, {0.1, 0.9, 0.5}));
  // Arm 1 now has data: with epsilon=0.1 it usually exploits arm 1 — but we
  // only check state indirectly: selecting must not throw and stay in range.
  for (TimeSlot t = 2; t < 10; ++t) {
    const ArmId a = with_side.select(t);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
  EXPECT_EQ(with_side.name(), "eps-greedy+side");
  EXPECT_THROW(EpsilonGreedy(EpsilonGreedyOptions{.epsilon = 1.5}),
               std::invalid_argument);
}

TEST(Thompson, PosteriorMeanMovesTowardData) {
  ThompsonSampling policy;
  policy.reset(empty_graph(2));
  EXPECT_DOUBLE_EQ(policy.posterior_mean(0), 0.5);  // uniform prior
  for (TimeSlot t = 1; t <= 50; ++t) policy.observe(0, t, {{0, 1.0}});
  EXPECT_GT(policy.posterior_mean(0), 0.9);
  for (TimeSlot t = 1; t <= 50; ++t) policy.observe(1, t, {{1, 0.0}});
  EXPECT_LT(policy.posterior_mean(1), 0.1);
}

TEST(Thompson, SelectsWithinRange) {
  ThompsonSampling policy;
  policy.reset(empty_graph(5));
  for (TimeSlot t = 1; t <= 20; ++t) {
    const ArmId a = policy.select(t);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);
  }
  EXPECT_THROW(ThompsonSampling(ThompsonOptions{.prior_alpha = 0.0}),
               std::invalid_argument);
}

TEST(Exp3, ProbabilitiesFormDistribution) {
  Exp3 policy;
  policy.reset(empty_graph(4));
  (void)policy.select(1);
  double total = 0.0;
  for (ArmId i = 0; i < 4; ++i) {
    EXPECT_GT(policy.probability(i), 0.0);
    total += policy.probability(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Exp3, RewardIncreasesProbability) {
  Exp3 policy(Exp3Options{.gamma = 0.2});
  policy.reset(empty_graph(3));
  for (TimeSlot t = 1; t <= 100; ++t) {
    const ArmId a = policy.select(t);
    policy.observe(a, t, {{a, a == 2 ? 1.0 : 0.0}});
  }
  (void)policy.select(101);
  EXPECT_GT(policy.probability(2), policy.probability(0));
  EXPECT_GT(policy.probability(2), policy.probability(1));
  EXPECT_THROW(Exp3(Exp3Options{.gamma = 0.0}), std::invalid_argument);
}

TEST(RandomPolicy, UniformCoverage) {
  RandomPolicy policy(123);
  policy.reset(empty_graph(6));
  std::set<ArmId> seen;
  for (TimeSlot t = 1; t <= 300; ++t) seen.insert(policy.select(t));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(PolicyFactory, BuildsEveryName) {
  for (const auto& name : single_play_policy_names()) {
    const auto policy = make_single_play_policy(name, 1000, 7);
    ASSERT_NE(policy, nullptr) << name;
    policy->reset(path_graph(4));
    const ArmId a = policy->select(1);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

TEST(PolicyFactory, UnknownNameThrows) {
  EXPECT_THROW(make_single_play_policy("nope", 100, 1), std::invalid_argument);
}

TEST(PolicyFactory, SelectsBeforeResetThrow) {
  DflSso sso;
  EXPECT_THROW((void)sso.select(1), std::logic_error);
  Moss moss;
  EXPECT_THROW((void)moss.select(1), std::logic_error);
  Ucb1 ucb;
  EXPECT_THROW((void)ucb.select(1), std::logic_error);
}

// All single-play policies satisfy the interface contract on a random graph.
class SinglePolicyContract : public ::testing::TestWithParam<std::string> {};

TEST_P(SinglePolicyContract, RunsHundredSlotsInRange) {
  Xoshiro256 rng(77);
  const Graph g = erdos_renyi(10, 0.3, rng);
  const auto policy = make_single_play_policy(GetParam(), 100, 42);
  policy->reset(g);
  for (TimeSlot t = 1; t <= 100; ++t) {
    const ArmId a = policy->select(t);
    ASSERT_GE(a, 0);
    ASSERT_LT(a, 10);
    std::vector<double> values(10);
    for (auto& v : values) v = rng.uniform();
    policy->observe(a, t, closed_obs(g, a, values));
  }
}

TEST_P(SinglePolicyContract, ResetRestartsDeterministically) {
  const Graph g = path_graph(6);
  const auto policy = make_single_play_policy(GetParam(), 100, 42);
  std::vector<ArmId> first, second;
  for (int round = 0; round < 2; ++round) {
    policy->reset(g);
    auto& log = round == 0 ? first : second;
    for (TimeSlot t = 1; t <= 50; ++t) {
      const ArmId a = policy->select(t);
      log.push_back(a);
      std::vector<double> values(6, 0.5);
      policy->observe(a, t, closed_obs(g, a, values));
    }
  }
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SinglePolicyContract,
                         ::testing::ValuesIn(single_play_policy_names()));

}  // namespace
}  // namespace ncb
