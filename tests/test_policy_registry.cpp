#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/policy_factory.hpp"
#include "core/policy_registry.hpp"
#include "graph/generators.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

// Every policy name the pre-registry factory recognized; all of them must
// keep resolving through the registry.
const std::vector<std::string> kLegacySingleNames{
    "dfl-sso",  "dfl-sso-greedy", "dfl-ssr",   "dfl-ssr-meansum",
    "moss",     "moss-anytime",   "ucb1",      "ucb-n",
    "ucb-maxn", "kl-ucb",         "kl-ucb-n",  "eps-greedy",
    "eps-greedy-side", "thompson", "thompson-side", "exp3",
    "exp3-set", "sw-dfl-sso",     "d-dfl-sso", "random"};

const std::vector<std::string> kLegacyCombinatorialNames{
    "dfl-cso", "dfl-cso-observable", "dfl-csr", "dfl-csr-greedy", "cucb"};

[[nodiscard]] std::string thrown_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(PolicyRegistry, EnumerationMatchesDescriptors) {
  const PolicyRegistry& registry = PolicyRegistry::instance();
  const auto descriptors = registry.descriptors();

  std::set<std::string> names;
  for (const PolicyDescriptor* d : descriptors) {
    EXPECT_TRUE(names.insert(d->name).second) << "duplicate " << d->name;
    EXPECT_FALSE(d->description.empty()) << d->name;
    EXPECT_NE(d->scenarios, 0) << d->name << " advertises no scenario";
    EXPECT_NE(static_cast<bool>(d->make_single),
              static_cast<bool>(d->make_combinatorial))
        << d->name << " must set exactly one builder";
    EXPECT_NE(registry.find(d->name), nullptr);
  }

  // The name lists partition the descriptor set.
  std::set<std::string> listed;
  for (const auto& n : registry.single_play_names()) {
    ASSERT_NE(registry.find(n), nullptr) << n;
    EXPECT_FALSE(registry.find(n)->is_combinatorial()) << n;
    listed.insert(n);
  }
  for (const auto& n : registry.combinatorial_names()) {
    ASSERT_NE(registry.find(n), nullptr) << n;
    EXPECT_TRUE(registry.find(n)->is_combinatorial()) << n;
    listed.insert(n);
  }
  EXPECT_EQ(listed, names);

  // All pre-registry factory names are still registered.
  for (const auto& n : kLegacySingleNames) {
    ASSERT_NE(registry.find(n), nullptr) << "legacy name lost: " << n;
    EXPECT_FALSE(registry.find(n)->is_combinatorial()) << n;
  }
  for (const auto& n : kLegacyCombinatorialNames) {
    ASSERT_NE(registry.find(n), nullptr) << "legacy name lost: " << n;
    EXPECT_TRUE(registry.find(n)->is_combinatorial()) << n;
  }
}

TEST(PolicyRegistry, EveryDescriptorBuilds) {
  const PolicyRegistry& registry = PolicyRegistry::instance();
  const Graph g = path_graph(6);
  ExperimentConfig config;
  config.num_arms = 6;
  config.strategy_size = 2;
  const auto family = build_family(config, g);

  for (const PolicyDescriptor* d : registry.descriptors()) {
    if (d->is_combinatorial()) {
      const auto policy = registry.make_combinatorial(d->name, family, 7);
      ASSERT_NE(policy, nullptr) << d->name;
      policy->reset();
      const StrategyId x = policy->select(1);
      EXPECT_GE(x, 0) << d->name;
      EXPECT_LT(static_cast<std::size_t>(x), family->size()) << d->name;
      EXPECT_NE(policy->scenarios() & kCombinatorialScenarios, 0) << d->name;
    } else {
      const auto policy = registry.make_single_play(d->name, 1000, 7);
      ASSERT_NE(policy, nullptr) << d->name;
      policy->reset(g);
      const ArmId a = policy->select(1);
      EXPECT_GE(a, 0) << d->name;
      EXPECT_LT(a, 6) << d->name;
      EXPECT_NE(policy->scenarios() & kSinglePlayScenarios, 0) << d->name;
      EXPECT_FALSE(policy->describe().empty()) << d->name;
    }
  }
}

TEST(PolicyRegistry, UnknownNameSuggestsNearest) {
  const PolicyRegistry& registry = PolicyRegistry::instance();
  const std::string msg = thrown_message(
      [&] { (void)registry.make_single_play("dfl-ss0", 100, 1); });
  EXPECT_NE(msg.find("unknown single-play policy"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
  EXPECT_NE(msg.find("dfl-sso"), std::string::npos) << msg;

  EXPECT_EQ(registry.nearest_name("ucb-nn"), "ucb-n");
  EXPECT_EQ(registry.nearest_name("thomson"), "thompson");
  EXPECT_THROW((void)make_single_play_policy("nope", 100, 1),
               std::invalid_argument);
}

TEST(PolicyRegistry, WrongKindIsExplained) {
  const std::string msg = thrown_message(
      [] { (void)make_single_play_policy("dfl-cso", 100, 1); });
  EXPECT_NE(msg.find("combinatorial"), std::string::npos) << msg;
}

TEST(PolicyRegistry, ParamSpecsRoundTripIntoDescribe) {
  const auto eps = make_single_play_policy("eps-greedy:eps=0.05", 1000, 7);
  EXPECT_NE(eps->describe().find("eps=0.05"), std::string::npos)
      << eps->describe();

  const auto ucb = make_single_play_policy("ucb1:c=4", 1000, 7);
  EXPECT_NE(ucb->describe().find("c=4"), std::string::npos) << ucb->describe();

  // "auto" selects the anytime variant regardless of the run horizon.
  const auto anytime = make_single_play_policy("moss:horizon=auto", 5000, 7);
  EXPECT_EQ(anytime->name(), "MOSS-anytime");
  const auto fixed = make_single_play_policy("moss:horizon=500", 5000, 7);
  EXPECT_NE(fixed->describe().find("horizon=500"), std::string::npos)
      << fixed->describe();
  // Bare "moss" inherits the run horizon (legacy behavior).
  const auto moss = make_single_play_policy("moss", 5000, 7);
  EXPECT_NE(moss->describe().find("horizon=5000"), std::string::npos)
      << moss->describe();

  const auto sw = make_single_play_policy("sw-dfl-sso:window=250", 5000, 7);
  EXPECT_NE(sw->name().find("w=250"), std::string::npos) << sw->name();

  const auto combo = PolicyRegistry::instance().make_combinatorial(
      "cucb:c=3",
      [] {
        ExperimentConfig config;
        config.num_arms = 6;
        config.strategy_size = 2;
        return build_family(config, path_graph(6));
      }(),
      7);
  EXPECT_NE(combo->describe().find("c=3"), std::string::npos)
      << combo->describe();
}

TEST(PolicyRegistry, MalformedSpecsThrow) {
  // Unknown key, naming the valid ones.
  const std::string unknown_key = thrown_message(
      [] { (void)make_single_play_policy("eps-greedy:epsilon=0.5", 100, 1); });
  EXPECT_NE(unknown_key.find("unknown param"), std::string::npos);
  EXPECT_NE(unknown_key.find("eps"), std::string::npos);

  EXPECT_THROW((void)make_single_play_policy("ucb1:c=abc", 100, 1),
               std::invalid_argument);
  EXPECT_THROW((void)make_single_play_policy("ucb1:c=1,c=2", 100, 1),
               std::invalid_argument);
  EXPECT_THROW((void)make_single_play_policy("ucb1:c", 100, 1),
               std::invalid_argument);
  // "auto" only where the schema allows it.
  EXPECT_THROW((void)make_single_play_policy("ucb1:c=auto", 100, 1),
               std::invalid_argument);
  EXPECT_THROW((void)make_single_play_policy("sw-dfl-sso:window=2.5", 100, 1),
               std::invalid_argument);
  // Well-formed "auto" accepted where allowed.
  EXPECT_NO_THROW(
      (void)make_single_play_policy("sw-dfl-sso:window=auto", 100, 1));
}

// The batched span delivery must be behaviorally identical to handing the
// same slot's pairs over one edge at a time: identical selections, hence
// identical regret trajectories, for a fixed seed. (Holds for every learner
// whose update is additive over observations and does not require the
// played arm in each chunk.)
TEST(PolicyRegistry, BatchedMatchesPerEdgeTrajectories) {
  for (const std::string name :
       {"dfl-sso", "ucb-n", "eps-greedy-side", "thompson-side", "exp3-set",
        "dfl-ssr"}) {
    Xoshiro256 graph_rng(123);
    const Graph g = erdos_renyi(12, 0.4, graph_rng);
    const auto batched = make_single_play_policy(name, 300, 42);
    const auto per_edge = make_single_play_policy(name, 300, 42);
    batched->reset(g);
    per_edge->reset(g);

    Xoshiro256 env_rng(99);
    std::vector<double> batched_regret, per_edge_regret;
    double batched_cum = 0.0, per_edge_cum = 0.0;
    std::vector<Observation> slot;
    for (TimeSlot t = 1; t <= 300; ++t) {
      const ArmId a = batched->select(t);
      const ArmId b = per_edge->select(t);
      ASSERT_EQ(a, b) << name << " diverged at slot " << t;

      std::vector<double> values(g.num_vertices());
      for (auto& v : values) v = env_rng.uniform();
      slot.clear();
      for (const ArmId j : g.closed_neighborhood(a)) {
        slot.push_back({j, values[static_cast<std::size_t>(j)]});
      }

      batched->observe(a, t, slot);  // one span for the whole slot
      for (const Observation& obs : slot) {
        per_edge->observe(b, t, ObservationSpan(&obs, 1));  // one per edge
      }

      const double regret = 1.0 - values[static_cast<std::size_t>(a)];
      batched_cum += regret;
      per_edge_cum += regret;
      batched_regret.push_back(batched_cum);
      per_edge_regret.push_back(per_edge_cum);
    }
    EXPECT_EQ(batched_regret, per_edge_regret) << name;
  }
}

TEST(PolicyRegistry, ListingNamesEveryPolicy) {
  const std::string listing = PolicyRegistry::instance().render_listing();
  for (const PolicyDescriptor* d : PolicyRegistry::instance().descriptors()) {
    EXPECT_NE(listing.find(d->name), std::string::npos) << d->name;
    EXPECT_NE(listing.find(d->description), std::string::npos) << d->name;
    EXPECT_NE(listing.find(scenario_mask_names(d->scenarios)),
              std::string::npos)
        << d->name;
  }
}

}  // namespace
}  // namespace ncb
