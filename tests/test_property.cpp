// Property-based suites: structural invariants checked across randomized
// instances (seeds are the TEST_P parameter).
#include <gtest/gtest.h>

#include <numeric>

#include "core/policy_factory.hpp"
#include "graph/clique_cover.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"
#include "strategy/strategy_graph.hpp"

namespace ncb {
namespace {

class RandomGraphProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph make_graph(std::size_t n, double p) {
    Xoshiro256 rng(GetParam());
    return erdos_renyi(n, p, rng);
  }
};

TEST_P(RandomGraphProperty, ClosedNeighborhoodContainsSelfAndNeighbors) {
  const Graph g = make_graph(30, 0.3);
  for (ArmId v = 0; v < 30; ++v) {
    const ArmSpan closed = g.closed_neighborhood(v);
    EXPECT_NE(std::find(closed.begin(), closed.end(), v), closed.end());
    EXPECT_EQ(closed.size(), g.degree(v) + 1);
    for (const ArmId j : g.neighbors(v)) {
      EXPECT_NE(std::find(closed.begin(), closed.end(), j), closed.end());
      EXPECT_TRUE(g.has_edge(v, j));
      EXPECT_TRUE(g.has_edge(j, v));  // symmetry
    }
  }
}

TEST_P(RandomGraphProperty, ComplementInvolution) {
  const Graph g = make_graph(15, 0.4);
  const Graph gcc = g.complement().complement();
  EXPECT_EQ(gcc.edges(), g.edges());
}

TEST_P(RandomGraphProperty, GreedyCliqueCoverValid) {
  const Graph g = make_graph(40, 0.5);
  EXPECT_TRUE(is_valid_clique_cover(g, greedy_clique_cover(g)));
}

TEST_P(RandomGraphProperty, StrategyGraphIsSymmetricAndLoopFree) {
  const Graph g = make_graph(7, 0.4);
  const auto family = std::make_shared<const FeasibleSet>(
      make_subset_family(std::make_shared<const Graph>(g), 2));
  const Graph sg = build_strategy_graph(*family);
  for (StrategyId x = 0; x < static_cast<StrategyId>(family->size()); ++x) {
    EXPECT_FALSE(sg.has_edge(x, x));
    for (StrategyId y = 0; y < static_cast<StrategyId>(family->size()); ++y) {
      EXPECT_EQ(sg.has_edge(x, y), sg.has_edge(y, x));
    }
  }
}

TEST_P(RandomGraphProperty, NeighborhoodMonotoneUnderStrategyGrowth) {
  const Graph g = make_graph(12, 0.3);
  const auto family = std::make_shared<const FeasibleSet>(
      make_subset_family(std::make_shared<const Graph>(g), 3));
  // For every strategy, Y of any subset-strategy is contained in Y of the
  // superset strategy.
  for (StrategyId x = 0; x < static_cast<StrategyId>(family->size()); ++x) {
    for (StrategyId y = 0; y < static_cast<StrategyId>(family->size()); ++y) {
      if (family->strategy_bits(x).is_subset_of(family->strategy_bits(y))) {
        EXPECT_TRUE(family->neighborhood_bits(x).is_subset_of(
            family->neighborhood_bits(y)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

class RunnerInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RunnerInvariants, SinglePlayAccountingConsistent) {
  Xoshiro256 rng(GetParam());
  const Graph g = erdos_renyi(12, 0.35, rng);
  auto inst = random_bernoulli_instance(g, rng);
  Environment env(inst, GetParam() * 13 + 1);
  const auto policy = make_single_play_policy("dfl-sso", 400, GetParam());
  RunnerOptions opts;
  opts.horizon = 400;
  const auto result = run_single_play(*policy, env, Scenario::kSso, opts);

  // 1. cumulative = prefix sums of per-slot.
  double running = 0.0;
  for (std::size_t t = 0; t < 400; ++t) {
    running += result.per_slot_regret[t];
    ASSERT_NEAR(result.cumulative_regret[t], running, 1e-9);
  }
  // 2. play counts sum to horizon.
  EXPECT_EQ(std::accumulate(result.play_counts.begin(),
                            result.play_counts.end(), std::int64_t{0}),
            400);
  // 3. pseudo-regret non-negative; realized regret bounded by opt − 0 and
  //    opt − K (rewards in [0,1]).
  for (std::size_t t = 0; t < 400; ++t) {
    EXPECT_GE(result.per_slot_pseudo_regret[t], -1e-12);
    EXPECT_LE(result.per_slot_regret[t], result.optimal_per_slot + 1e-12);
    EXPECT_GE(result.per_slot_regret[t], result.optimal_per_slot - 1.0 - 1e-12);
  }
  // 4. total reward + cumulative regret = horizon · optimal.
  EXPECT_NEAR(result.total_reward + result.cumulative_regret.back(),
              400.0 * result.optimal_per_slot, 1e-6);
}

TEST_P(RunnerInvariants, SsrAccountingConsistent) {
  Xoshiro256 rng(GetParam() ^ 0xabcdef);
  const Graph g = erdos_renyi(10, 0.3, rng);
  auto inst = random_bernoulli_instance(g, rng);
  Environment env(inst, GetParam() * 7 + 5);
  const auto policy = make_single_play_policy("dfl-ssr", 300, GetParam());
  RunnerOptions opts;
  opts.horizon = 300;
  const auto result = run_single_play(*policy, env, Scenario::kSsr, opts);
  EXPECT_NEAR(result.total_reward + result.cumulative_regret.back(),
              300.0 * result.optimal_per_slot, 1e-6);
  for (const double pr : result.per_slot_pseudo_regret) EXPECT_GE(pr, -1e-12);
}

TEST_P(RunnerInvariants, CombinatorialAccountingConsistent) {
  Xoshiro256 rng(GetParam() ^ 0x123456);
  const Graph g = erdos_renyi(8, 0.4, rng);
  auto inst = random_bernoulli_instance(g, rng);
  const auto family = std::make_shared<const FeasibleSet>(
      make_subset_family(std::make_shared<const Graph>(inst.graph()), 2));
  Environment env(inst, GetParam() + 99);
  for (const char* name : {"dfl-cso", "dfl-csr", "cucb"}) {
    const auto policy = make_combinatorial_policy(name, family, GetParam());
    const Scenario scenario =
        std::string(name) == "dfl-csr" ? Scenario::kCsr : Scenario::kCso;
    RunnerOptions opts;
    opts.horizon = 200;
    Environment fresh(inst, GetParam() + 99);
    const auto result =
        run_combinatorial(*policy, *family, fresh, scenario, opts);
    EXPECT_NEAR(result.total_reward + result.cumulative_regret.back(),
                200.0 * result.optimal_per_slot, 1e-6)
        << name;
    for (const double pr : result.per_slot_pseudo_regret) {
      ASSERT_GE(pr, -1e-12) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunnerInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class PolicyGraphSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PolicyGraphSweep, HundredSlotsOnEveryGraphShape) {
  const auto& [policy_name, shape] = GetParam();
  Graph g = empty_graph(1);
  switch (shape) {
    case 0: g = empty_graph(9); break;
    case 1: g = complete_graph(9); break;
    case 2: g = star_graph(9); break;
    case 3: g = cycle_graph(9); break;
    case 4: g = path_graph(9); break;
    default: g = disjoint_cliques(3, 3); break;
  }
  auto policy = make_single_play_policy(policy_name, 100, 7);
  policy->reset(g);
  Xoshiro256 rng(55);
  for (TimeSlot t = 1; t <= 100; ++t) {
    const ArmId a = policy->select(t);
    ASSERT_GE(a, 0);
    ASSERT_LT(a, 9);
    std::vector<Observation> obs;
    for (const ArmId j : g.closed_neighborhood(a)) {
      obs.push_back({j, rng.uniform()});
    }
    policy->observe(a, t, obs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyGraphSweep,
    ::testing::Combine(::testing::Values("dfl-sso", "dfl-ssr", "moss", "ucb-n",
                                         "ucb-maxn", "thompson-side"),
                       ::testing::Range(0, 6)));

}  // namespace
}  // namespace ncb
