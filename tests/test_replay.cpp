// Counterfactual replay & offline policy evaluation (src/replay/).
//
// The load-bearing pins:
//  - the IPS estimate of the *logging* policy replayed at matched
//    graph/seed/epsilon equals the log's own empirical mean reward
//    EXACTLY (bitwise), with ESS == n and every weight == 1.0;
//  - importance weights are bounded by the epsilon propensity floor the
//    engine logs (p >= eps/K), which bounds the estimator variance;
//  - a candidate's replay estimate agrees with an exact on-policy run of
//    that candidate at matched seeds (statistically, within its own SE);
//  - replaying the same log twice is bit-identical, down to the rendered
//    panel JSON bytes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "exp/emitters.hpp"
#include "replay/estimators.hpp"
#include "replay/replay.hpp"
#include "serve/decision_engine.hpp"
#include "serve/event_log.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "ncb_replay_XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ignored;
    fs::remove_all(path, ignored);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// Deterministic per-arm Bernoulli means spread over [0.15, 0.85].
double arm_mean(ArmId arm) {
  const std::uint64_t h = (static_cast<std::uint64_t>(arm) + 1) * 2654435761ULL;
  return 0.15 + 0.7 * static_cast<double>(h % 97) / 96.0;
}

struct ServeSetup {
  std::string policy_spec = "eps-greedy:eps=0";
  double epsilon = 0.2;
  std::uint64_t seed = 99;
  std::size_t arms = 30;
  double edge_prob = 0.3;
  std::size_t horizon = 4000;
  std::size_t num_keys = 16;
  std::uint64_t reward_seed = 4242;
};

Graph make_graph(const ServeSetup& setup) {
  ExperimentConfig config;
  config.graph_family = GraphFamily::kErdosRenyi;
  config.num_arms = setup.arms;
  config.edge_probability = setup.edge_prob;
  config.seed = setup.seed;
  return build_graph(config);
}

/// Drives one policy online (the exact serve decide/report loop) and logs
/// to `log_path` when non-empty. Returns the run's empirical mean reward.
/// Rewards are Bernoulli(arm_mean(action)) drawn from a counter-based
/// stream keyed by decision_id, so two runs at matched seeds face the same
/// reward randomness per decision.
double drive_engine(const ServeSetup& setup, const std::string& policy_spec,
                    const std::string& log_path) {
  const Graph graph = make_graph(setup);
  std::unique_ptr<serve::EventLog> log;
  if (!log_path.empty()) {
    log = std::make_unique<serve::EventLog>(
        serve::EventLog::Options{log_path, 64 * 1024, 50});
  }
  serve::EngineOptions options;
  options.policy_spec = policy_spec;
  options.epsilon = setup.epsilon;
  options.seed = setup.seed;
  serve::DecisionEngine engine(graph, options, log.get());
  double reward_sum = 0.0;
  for (std::size_t i = 0; i < setup.horizon; ++i) {
    const std::string key = "user" + std::to_string(i % setup.num_keys);
    const serve::Decision decision = engine.decide(key);
    Xoshiro256 reward_rng(derive_seed_at(setup.reward_seed,
                                         decision.decision_id));
    const double reward =
        reward_rng.bernoulli(arm_mean(decision.action)) ? 1.0 : 0.0;
    engine.report(decision.decision_id, reward);
    reward_sum += reward;
  }
  if (log) log->close();
  return reward_sum / static_cast<double>(setup.horizon);
}

TEST(EventLogJoin, JoinsOrphansAndDuplicates) {
  TempDir tmp;
  const std::string path = tmp.file("join.ncbl");
  {
    serve::EventLog log({path, 64 * 1024, 50});
    log.append_decision(1, "alice", 3, 0.5);
    log.append_decision(2, "bob", 4, 0.25);
    log.append_feedback(1, 1.0);
    log.append_feedback(1, 0.0);   // duplicate
    log.append_feedback(99, 1.0);  // orphan
    log.close();
  }
  const serve::EventLogScan scan = serve::read_event_log(path);
  const serve::EventLogJoin join = serve::join_event_log(scan);
  EXPECT_EQ(join.decisions, 2u);
  EXPECT_EQ(join.joined, 1u);
  EXPECT_EQ(join.orphan_feedbacks, 1u);
  EXPECT_EQ(join.duplicate_feedbacks, 1u);
  EXPECT_EQ(join.min_propensity, 0.25);
  ASSERT_EQ(join.events.size(), 2u);
  EXPECT_EQ(join.events[0].key, "alice");
  EXPECT_TRUE(join.events[0].has_reward);
  EXPECT_EQ(join.events[0].reward, 1.0);  // first feedback wins
  EXPECT_FALSE(join.events[1].has_reward);
}

TEST(EventLogJoin, NonPositivePropensityThrows) {
  TempDir tmp;
  const std::string path = tmp.file("bad.ncbl");
  {
    serve::EventLog log({path, 64 * 1024, 50});
    log.append_decision(1, "alice", 0, 0.0);
    log.close();
  }
  const serve::EventLogScan scan = serve::read_event_log(path);
  EXPECT_THROW((void)serve::join_event_log(scan), std::invalid_argument);
}

TEST(Estimators, AccumulatorFormulas) {
  replay::EstimatorAccumulator acc;
  acc.add(/*weight=*/2.0, /*reward=*/1.0, /*direct=*/0.5, /*model=*/0.25);
  acc.add(/*weight=*/0.5, /*reward=*/0.0, /*direct=*/0.5, /*model=*/0.75);
  EXPECT_EQ(acc.events(), 2u);
  EXPECT_DOUBLE_EQ(acc.ips().mean(), (2.0 * 1.0 + 0.5 * 0.0) / 2.0);
  EXPECT_DOUBLE_EQ(acc.snips(), (2.0 * 1.0) / 2.5);
  EXPECT_DOUBLE_EQ(acc.ess(), 2.5 * 2.5 / (4.0 + 0.25));
  EXPECT_DOUBLE_EQ(acc.max_weight(), 2.0);
  // DR terms: 0.5 + 2*(1-0.25) = 2.0 and 0.5 + 0.5*(0-0.75) = 0.125.
  EXPECT_DOUBLE_EQ(acc.dr().mean(), (2.0 + 0.125) / 2.0);
}

TEST(Estimators, RewardModelFallsBackToGlobalMean) {
  replay::RewardModel model(3);
  model.observe(0, 1.0);
  model.observe(0, 0.0);
  model.observe(1, 1.0);
  EXPECT_DOUBLE_EQ(model.value(0), 0.5);
  EXPECT_DOUBLE_EQ(model.value(1), 1.0);
  // Arm 2 never rewarded: global mean of {1, 0, 1}.
  EXPECT_DOUBLE_EQ(model.value(2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(model.arm_average(), (0.5 + 1.0 + 2.0 / 3.0) / 3.0);
}

/// The construction identity: the logging policy replayed at matched
/// graph/seed/epsilon reprices every logged action at its logged
/// propensity, so every weight is exactly 1.0 and IPS collapses onto the
/// log's own empirical reward sequence — equal to the last bit.
TEST(ReplayPanel, LoggingPolicyIpsIdentityIsExact) {
  TempDir tmp;
  ServeSetup setup;
  const std::string path = tmp.file("serve.ncbl");
  const double online_mean = drive_engine(setup, setup.policy_spec, path);

  const serve::EventLogScan scan = serve::read_event_log(path);
  EXPECT_FALSE(scan.truncated_tail);
  replay::ReplayOptions options;
  options.epsilon = setup.epsilon;
  options.seed = setup.seed;
  const replay::PanelResult panel = replay::replay_panel(
      make_graph(setup), scan, {setup.policy_spec}, options);

  EXPECT_EQ(panel.joined, setup.horizon);
  EXPECT_DOUBLE_EQ(panel.empirical_mean, online_mean);
  const replay::CandidateSummary& logger = panel.candidates.at(0);
  EXPECT_EQ(logger.events, setup.horizon);
  // Bitwise, not approximate: == on doubles is the point of the test.
  EXPECT_EQ(logger.ips_mean, panel.empirical_mean);
  EXPECT_EQ(logger.ips_variance, panel.empirical_variance);
  EXPECT_EQ(logger.snips, panel.empirical_mean);
  EXPECT_EQ(logger.ess, static_cast<double>(setup.horizon));
  EXPECT_EQ(logger.max_weight, 1.0);
  // The replayed sampled-action stream reproduces the served actions.
  EXPECT_EQ(logger.matched, setup.horizon);
}

/// Engine-logged propensities sit on the eps/K floor, which caps every
/// importance weight at (1 - eps + eps/K) / (eps/K) and therefore bounds
/// the per-term magnitude and the sample variance of any candidate.
TEST(ReplayPanel, WeightsAndVarianceBoundedByPropensityFloor) {
  TempDir tmp;
  ServeSetup setup;
  const std::string path = tmp.file("serve.ncbl");
  (void)drive_engine(setup, setup.policy_spec, path);

  const serve::EventLogScan scan = serve::read_event_log(path);
  replay::ReplayOptions options;
  options.epsilon = setup.epsilon;
  options.seed = setup.seed;
  const replay::PanelResult panel = replay::replay_panel(
      make_graph(setup), scan, {"ucb1", "dfl-sso", "random"}, options);

  const double floor =
      options.epsilon / static_cast<double>(setup.arms);
  EXPECT_GE(panel.min_propensity, floor);
  const double max_q = 1.0 - options.epsilon + floor;
  const double weight_cap = max_q / floor;
  for (const replay::CandidateSummary& candidate : panel.candidates) {
    EXPECT_EQ(candidate.events, setup.horizon) << candidate.spec;
    EXPECT_LE(candidate.max_weight, weight_cap) << candidate.spec;
    EXPECT_GT(candidate.ess, 0.0) << candidate.spec;
    EXPECT_LE(candidate.ess, static_cast<double>(setup.horizon))
        << candidate.spec;
    // Rewards are {0,1}, so every IPS term lies in [0, weight_cap] and the
    // sample variance cannot exceed the squared range.
    EXPECT_LE(candidate.ips_variance, weight_cap * weight_cap)
        << candidate.spec;
    EXPECT_TRUE(std::isfinite(candidate.dr_mean)) << candidate.spec;
    EXPECT_TRUE(std::isfinite(candidate.snips)) << candidate.spec;
  }
}

/// Cross-check against ground truth: run the candidate on-policy at the
/// same seeds (same per-decision reward streams) and compare with its
/// replay estimate off the logging policy's traffic. `random` is
/// state-free, so the only gap is importance-weighting noise — the
/// estimate must land within a few of its own standard errors.
TEST(ReplayPanel, CandidateMatchesOnPolicyRunAtMatchedSeeds) {
  TempDir tmp;
  ServeSetup setup;
  setup.arms = 12;
  setup.edge_prob = 0.4;
  setup.epsilon = 0.3;
  setup.horizon = 20000;
  const std::string path = tmp.file("serve.ncbl");
  (void)drive_engine(setup, setup.policy_spec, path);
  const double on_policy_mean = drive_engine(setup, "random", "");

  const serve::EventLogScan scan = serve::read_event_log(path);
  replay::ReplayOptions options;
  options.epsilon = setup.epsilon;
  options.seed = setup.seed;
  const replay::PanelResult panel =
      replay::replay_panel(make_graph(setup), scan, {"random"}, options);

  const replay::CandidateSummary& candidate = panel.candidates.at(0);
  EXPECT_NEAR(candidate.ips_mean, on_policy_mean,
              5.0 * candidate.ips_se + 1e-3);
  EXPECT_NEAR(candidate.dr_mean, on_policy_mean,
              5.0 * candidate.dr_se + 1e-3);
  EXPECT_NEAR(candidate.snips, on_policy_mean, 0.1);
}

TEST(ReplayPanel, RepeatedReplayIsBitIdentical) {
  TempDir tmp;
  ServeSetup setup;
  setup.horizon = 1500;
  const std::string path = tmp.file("serve.ncbl");
  (void)drive_engine(setup, setup.policy_spec, path);
  const serve::EventLogScan scan = serve::read_event_log(path);
  replay::ReplayOptions options;
  options.epsilon = setup.epsilon;
  options.seed = setup.seed;
  const std::vector<std::string> specs{setup.policy_spec, "ucb1", "thompson"};

  const replay::PanelResult a =
      replay::replay_panel(make_graph(setup), scan, specs, options);
  const replay::PanelResult b =
      replay::replay_panel(make_graph(setup), scan, specs, options);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    const replay::CandidateSummary& x = a.candidates[i];
    const replay::CandidateSummary& y = b.candidates[i];
    EXPECT_EQ(x.ips_mean, y.ips_mean) << x.spec;
    EXPECT_EQ(x.ips_variance, y.ips_variance) << x.spec;
    EXPECT_EQ(x.snips, y.snips) << x.spec;
    EXPECT_EQ(x.dr_mean, y.dr_mean) << x.spec;
    EXPECT_EQ(x.ess, y.ess) << x.spec;
    EXPECT_EQ(x.matched, y.matched) << x.spec;
    // Down to the rendered panel bytes.
    exp::ReplayRecord rx, ry;
    rx.policy = x.spec;
    rx.ips_mean = x.ips_mean;
    rx.dr_mean = x.dr_mean;
    ry.policy = y.spec;
    ry.ips_mean = y.ips_mean;
    ry.dr_mean = y.dr_mean;
    EXPECT_EQ(exp::render_replay_json(rx), exp::render_replay_json(ry));
  }
}

TEST(ReplayPanel, RejectsBadInputsUpFront) {
  TempDir tmp;
  ServeSetup setup;
  setup.horizon = 50;
  const std::string path = tmp.file("serve.ncbl");
  (void)drive_engine(setup, setup.policy_spec, path);
  const serve::EventLogScan scan = serve::read_event_log(path);
  const Graph graph = make_graph(setup);
  replay::ReplayOptions options;
  options.epsilon = setup.epsilon;
  options.seed = setup.seed;

  EXPECT_THROW((void)replay::replay_panel(graph, scan, {"no-such-policy"},
                                          options),
               std::invalid_argument);
  replay::ReplayOptions bad_eps = options;
  bad_eps.epsilon = 1.5;
  EXPECT_THROW((void)replay::replay_panel(graph, scan, {"ucb1"}, bad_eps),
               std::invalid_argument);
  // A graph smaller than the logged action range is a flag mismatch.
  ExperimentConfig tiny;
  tiny.graph_family = GraphFamily::kComplete;
  tiny.num_arms = 2;
  EXPECT_THROW((void)replay::replay_panel(build_graph(tiny), scan, {"ucb1"},
                                          options),
               std::invalid_argument);
}

TEST(ReplayEmitters, PanelDocumentShapeAndDeterminism) {
  exp::ReplayRecord record;
  record.policy = "ucb1";
  record.description = "UCB1(c=2)";
  record.epsilon = 0.1;
  record.seed = 7;
  record.decisions = 100;
  record.events = 90;
  record.matched = 12;
  record.ips_mean = 0.5;
  record.ips_se = 0.01;
  record.snips = 0.49;
  record.dr_mean = 0.51;
  record.dr_se = 0.008;
  record.ess = 42.5;
  record.max_weight = 9.5;
  const std::string line = exp::render_replay_json(record);
  EXPECT_NE(line.find("\"policy\":\"ucb1\""), std::string::npos);
  EXPECT_NE(line.find("\"ips_mean\":0.5"), std::string::npos);
  EXPECT_NE(line.find("\"ess\":42.5"), std::string::npos);
  EXPECT_NE(line.find("\"logging\":false"), std::string::npos);

  exp::ReplayPanelMeta meta;
  meta.log_path = "build/serve.ncbl";
  meta.decisions = 100;
  meta.feedbacks = 95;
  meta.joined = 90;
  meta.arms = 30;
  meta.graph = "er";
  meta.min_propensity = 0.00666;
  meta.empirical_mean = 0.5;
  const std::string doc = exp::render_replay_panel_json(meta, {line, line});
  EXPECT_NE(doc.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"engine\": \"ncb_replay\""), std::string::npos);
  EXPECT_NE(doc.find("\"policies\": [\n"), std::string::npos);
  EXPECT_EQ(doc, exp::render_replay_panel_json(meta, {line, line}));
}

}  // namespace
}  // namespace ncb
