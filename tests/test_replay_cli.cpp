// Process-level tests of the ncb_replay CLI's distributed panel, driving
// the real binary (path injected as NCB_REPLAY_BIN):
//   - field-named validation of the distributed flags,
//   - --workers {2,3} panel JSON is byte-identical to the single-process
//     run, logging-identity line included,
//   - a worker SIGKILLed mid-candidate (NCB_REPLAY_KILL_SPEC) is requeued
//     and the bytes still match,
//   - the same panel over real TCP workers (--listen / --worker-connect)
//     is byte-identical too.
// The event log under replay is generated in-process with the serve
// engine, so the suite needs no prior CLI run. All tests GTEST_SKIP when
// the binary is not built (ASan config builds tests without examples).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/decision_engine.hpp"
#include "serve/event_log.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

#ifndef NCB_REPLAY_BIN
#define NCB_REPLAY_BIN ""
#endif

namespace ncb {
namespace {

namespace fs = std::filesystem;

constexpr const char* kReplayBin = NCB_REPLAY_BIN;

bool binary_available() { return kReplayBin[0] != '\0'; }

#define REQUIRE_BINARY()                                            \
  do {                                                              \
    if (!binary_available())                                        \
      GTEST_SKIP() << "ncb_replay not built in this configuration"; \
  } while (0)

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "ncb_rcli_XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ignored;
    fs::remove_all(path, ignored);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

using EnvVars = std::vector<std::pair<std::string, std::string>>;

/// fork/exec of the real binary; stdout/stderr go to the given paths (or
/// /dev/null when empty).
pid_t spawn_replay(const std::vector<std::string>& args, const EnvVars& env,
                   const std::string& stdout_path = "",
                   const std::string& stderr_path = "") {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  for (const auto& [key, value] : env) {
    ::setenv(key.c_str(), value.c_str(), 1);
  }
  const auto redirect = [](const std::string& path, int target) {
    const int fd = ::open(path.empty() ? "/dev/null" : path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, target);
      ::close(fd);
    }
  };
  redirect(stdout_path, STDOUT_FILENO);
  redirect(stderr_path, STDERR_FILENO);
  std::vector<std::string> full;
  full.push_back(kReplayBin);
  full.insert(full.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(full.size() + 1);
  for (std::string& arg : full) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(kReplayBin, argv.data());
  ::_exit(127);
}

int wait_exit(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

int run_replay(const std::vector<std::string>& args, const EnvVars& env = {},
               const std::string& stdout_path = "",
               const std::string& stderr_path = "") {
  return wait_exit(spawn_replay(args, env, stdout_path, stderr_path));
}

// The serving configuration every test replays against (the graph flags of
// the CLI runs below must match it).
constexpr std::size_t kArms = 30;
constexpr double kEdgeProb = 0.3;
constexpr std::uint64_t kSeed = 99;
constexpr double kEpsilon = 0.2;
constexpr const char* kLoggingSpec = "eps-greedy:eps=0";

/// Deterministic per-arm Bernoulli means spread over [0.15, 0.85].
double arm_mean(ArmId arm) {
  const std::uint64_t h =
      (static_cast<std::uint64_t>(arm) + 1) * 2654435761ULL;
  return 0.15 + 0.7 * static_cast<double>(h % 97) / 96.0;
}

/// Writes an event log by driving the real serve engine — the same
/// decide/report loop ncb_serve runs, minus the socket.
void write_event_log(const std::string& log_path, std::size_t horizon) {
  ExperimentConfig config;
  config.graph_family = GraphFamily::kErdosRenyi;
  config.num_arms = kArms;
  config.edge_probability = kEdgeProb;
  config.seed = kSeed;
  const Graph graph = build_graph(config);

  serve::EventLog log({log_path, 64 * 1024, 50});
  serve::EngineOptions options;
  options.policy_spec = kLoggingSpec;
  options.epsilon = kEpsilon;
  options.seed = kSeed;
  serve::DecisionEngine engine(graph, options, &log);
  for (std::size_t i = 0; i < horizon; ++i) {
    const std::string key = "user" + std::to_string(i % 16);
    const serve::Decision decision = engine.decide(key);
    Xoshiro256 reward_rng(derive_seed_at(4242, decision.decision_id));
    const double reward =
        reward_rng.bernoulli(arm_mean(decision.action)) ? 1.0 : 0.0;
    engine.report(decision.decision_id, reward);
  }
  log.close();
}

/// The flags every panel run shares (matched to write_event_log).
std::vector<std::string> panel_args(const std::string& log,
                                    const std::string& out) {
  return {"--log",          log,
          "--logging-policy", kLoggingSpec,
          "--policies",     "ucb1;dfl-sso;moss",
          "--arms",         std::to_string(kArms),
          "--graph",        "er",
          "--edge-prob",    "0.3",
          "--seed",         std::to_string(kSeed),
          "--epsilon",      "0.2",
          "--out",          out};
}

TEST(ReplayCli, DistributedFlagRejectionsAreFieldNamed) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string log = dir.file("events.ncbl");
  write_event_log(log, 50);

  struct Case {
    std::vector<std::string> extra;
    std::string expect;  ///< must appear in stderr
  };
  const std::vector<Case> cases = {
      {{"--workers", "-1"}, "--workers"},
      {{"--listen", "no-colon"}, "--listen"},
      {{"--listen", "127.0.0.1:banana"}, "--listen"},
      {{"--listen", "127.0.0.1:0", "--workers", "2"}, "mutually exclusive"},
      {{"--port-file", dir.file("p.port")}, "--port-file requires --listen"},
  };
  for (const Case& c : cases) {
    std::vector<std::string> args = panel_args(log, dir.file("out.json"));
    args.insert(args.end(), c.extra.begin(), c.extra.end());
    const std::string err = dir.file("stderr.txt");
    EXPECT_EQ(run_replay(args, {}, "", err), 2) << c.expect;
    EXPECT_NE(read_text(err).find(c.expect), std::string::npos)
        << "stderr for " << c.expect << " was: " << read_text(err);
  }
}

TEST(ReplayCli, WorkersProduceByteIdenticalPanel) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string log = dir.file("events.ncbl");
  write_event_log(log, 800);

  const std::string reference = dir.file("ref.json");
  const std::string ref_stdout = dir.file("ref.out");
  ASSERT_EQ(run_replay(panel_args(log, reference), {}, ref_stdout), 0);
  const std::string expected = read_text(reference);
  ASSERT_FALSE(expected.empty());
  ASSERT_NE(read_text(ref_stdout).find("logging identity OK"),
            std::string::npos);

  for (const char* workers : {"2", "3"}) {
    const std::string out = dir.file(std::string("w") + workers + ".json");
    const std::string log_out = dir.file(std::string("w") + workers + ".out");
    std::vector<std::string> args = panel_args(log, out);
    args.push_back("--workers");
    args.push_back(workers);
    ASSERT_EQ(run_replay(args, {}, log_out), 0) << "--workers " << workers;
    EXPECT_EQ(read_text(out), expected) << "--workers " << workers;
    EXPECT_NE(read_text(log_out).find("logging identity OK"),
              std::string::npos)
        << "--workers " << workers;
  }
}

TEST(ReplayCli, KilledWorkerIsRequeuedWithIdenticalBytes) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string log = dir.file("events.ncbl");
  write_event_log(log, 400);

  const std::string reference = dir.file("ref.json");
  ASSERT_EQ(run_replay(panel_args(log, reference), {}), 0);

  // Crash injection (see replay/dispatch.hpp): the worker first assigned
  // the dfl-sso candidate SIGKILLs itself; the requeued attempt must
  // reproduce the bytes.
  const std::string out = dir.file("killed.json");
  const std::string log_out = dir.file("killed.out");
  std::vector<std::string> args = panel_args(log, out);
  args.push_back("--workers");
  args.push_back("2");
  ASSERT_EQ(
      run_replay(args, {{"NCB_REPLAY_KILL_SPEC", "dfl-sso"}}, log_out), 0);
  // Guard against spec drift silently defusing the injection.
  EXPECT_NE(read_text(log_out).find("requeued 1 candidates"),
            std::string::npos)
      << "crash injection never fired — NCB_REPLAY_KILL_SPEC no longer "
         "matches a panel candidate";
  EXPECT_EQ(read_text(out), read_text(reference));
}

TEST(ReplayCli, TcpWorkersProduceByteIdenticalPanel) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string log = dir.file("events.ncbl");
  write_event_log(log, 400);

  const std::string reference = dir.file("ref.json");
  ASSERT_EQ(run_replay(panel_args(log, reference), {}), 0);

  const std::string out = dir.file("tcp.json");
  const std::string port_file = dir.file("tcp.port");
  std::vector<std::string> args = panel_args(log, out);
  for (const char* extra :
       {"--listen", "127.0.0.1:0", "--port-file", port_file.c_str()}) {
    args.push_back(extra);
  }
  const pid_t coordinator =
      spawn_replay(args, {}, dir.file("coordinator.out"));
  ASSERT_GT(coordinator, 0);

  // The port file appears once the socket is bound; workers then dial in.
  std::string advertised;
  for (int i = 0; i < 2000 && advertised.empty(); ++i) {
    advertised = read_text(port_file);
    if (advertised.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_FALSE(advertised.empty()) << "coordinator never wrote --port-file";
  while (!advertised.empty() && advertised.back() == '\n') {
    advertised.pop_back();
  }

  const pid_t w1 = spawn_replay({"--worker-connect", advertised}, {});
  const pid_t w2 = spawn_replay({"--worker-connect", advertised}, {});
  EXPECT_EQ(wait_exit(coordinator), 0);
  EXPECT_EQ(wait_exit(w1), 0);
  EXPECT_EQ(wait_exit(w2), 0);
  EXPECT_EQ(read_text(out), read_text(reference));
  EXPECT_NE(read_text(dir.file("coordinator.out")).find("logging identity OK"),
            std::string::npos);
}

}  // namespace
}  // namespace ncb
