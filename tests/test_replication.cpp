#include "sim/replication.hpp"

#include <gtest/gtest.h>

#include "core/dfl_sso.hpp"
#include "core/moss.hpp"
#include "core/dfl_cso.hpp"
#include "graph/generators.hpp"

namespace ncb {
namespace {

BanditInstance small_instance() {
  Xoshiro256 rng(42);
  return random_bernoulli_instance(erdos_renyi(8, 0.4, rng), rng);
}

ReplicationOptions quick_options(std::size_t reps, TimeSlot horizon,
                                 ThreadPool* pool = nullptr) {
  ReplicationOptions o;
  o.replications = reps;
  o.master_seed = 1234;
  o.runner.horizon = horizon;
  o.pool = pool;
  return o;
}

SinglePolicyFactory sso_factory() {
  return [](std::uint64_t seed) -> std::unique_ptr<SinglePlayPolicy> {
    return std::make_unique<DflSso>(DflSsoOptions{.seed = seed});
  };
}

TEST(Replication, CountsAndSeriesLengths) {
  const auto inst = small_instance();
  const auto result = run_replicated_single(sso_factory(), inst,
                                            Scenario::kSso,
                                            quick_options(5, 200));
  EXPECT_EQ(result.replications, 5u);
  EXPECT_EQ(result.per_slot_regret.length(), 200u);
  EXPECT_EQ(result.cumulative_regret.length(), 200u);
  EXPECT_EQ(result.final_cumulative.count(), 5u);
  EXPECT_DOUBLE_EQ(result.optimal_per_slot, inst.best_mean());
}

TEST(Replication, DeterministicRegardlessOfThreads) {
  const auto inst = small_instance();
  const auto sequential = run_replicated_single(
      sso_factory(), inst, Scenario::kSso, quick_options(8, 300));
  ThreadPool pool(4);
  const auto parallel = run_replicated_single(
      sso_factory(), inst, Scenario::kSso, quick_options(8, 300, &pool));
  // Welford means are permutation-sensitive only to rounding; the totals
  // must agree to floating-point noise.
  const auto a = sequential.cumulative_regret.means();
  const auto b = parallel.cumulative_regret.means();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-8);
  EXPECT_NEAR(sequential.final_cumulative.mean(),
              parallel.final_cumulative.mean(), 1e-8);
}

TEST(Replication, DifferentSeedsGiveDifferentResults) {
  const auto inst = small_instance();
  auto opts1 = quick_options(4, 200);
  auto opts2 = quick_options(4, 200);
  opts2.master_seed = 9999;
  const auto r1 = run_replicated_single(sso_factory(), inst, Scenario::kSso, opts1);
  const auto r2 = run_replicated_single(sso_factory(), inst, Scenario::kSso, opts2);
  EXPECT_NE(r1.final_cumulative.mean(), r2.final_cumulative.mean());
}

TEST(Replication, AverageRegretIsCumulativeOverT) {
  const auto inst = small_instance();
  const auto result = run_replicated_single(sso_factory(), inst,
                                            Scenario::kSso,
                                            quick_options(3, 100));
  const auto cum = result.cumulative_regret.means();
  const auto avg = result.average_regret();
  ASSERT_EQ(avg.size(), 100u);
  for (std::size_t i = 0; i < avg.size(); ++i) {
    EXPECT_NEAR(avg[i], cum[i] / static_cast<double>(i + 1), 1e-12);
  }
}

TEST(Replication, NullFactoryThrows) {
  const auto inst = small_instance();
  EXPECT_THROW((void)run_replicated_single(nullptr, inst, Scenario::kSso,
                                           quick_options(2, 10)),
               std::invalid_argument);
}

TEST(Replication, CombinatorialDriverWorks) {
  const auto inst = small_instance();
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(inst.graph()), 2));
  ThreadPool pool(2);
  auto opts = quick_options(4, 150, &pool);
  const auto result = run_replicated_combinatorial(
      [family](std::uint64_t seed) -> std::unique_ptr<CombinatorialPolicy> {
        return std::make_unique<DflCso>(family, DflCsoOptions{.seed = seed});
      },
      inst, *family, Scenario::kCso, opts);
  EXPECT_EQ(result.replications, 4u);
  EXPECT_EQ(result.per_slot_regret.length(), 150u);
  EXPECT_GT(result.optimal_per_slot, 0.0);
}

TEST(Replication, PseudoRegretDecreasesForLearningPolicy) {
  // On an easy instance the average pseudo-regret over the last tenth must
  // be far below the first tenth.
  const auto inst = small_instance();
  const auto result = run_replicated_single(sso_factory(), inst,
                                            Scenario::kSso,
                                            quick_options(10, 2000));
  const auto pseudo = result.per_slot_pseudo_regret.means();
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    head += pseudo[i];
    tail += pseudo[pseudo.size() - 1 - i];
  }
  EXPECT_LT(tail, head * 0.5);
}

}  // namespace
}  // namespace ncb
