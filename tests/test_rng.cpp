#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace ncb {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicGivenSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsProduceDifferentStreams) {
  Xoshiro256 a(1), b(2);
  int agree = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++agree;
  }
  EXPECT_EQ(agree, 0);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformMeanCloseToHalf) {
  Xoshiro256 rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(0.25, 0.75);
    EXPECT_GE(u, 0.25);
    EXPECT_LT(u, 0.75);
  }
}

TEST(Xoshiro256, UniformIntCoversAllResidues) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Xoshiro256, UniformIntUnbiasedFrequency) {
  Xoshiro256 rng(23);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 7.0, 0.01);
  }
}

TEST(Xoshiro256, BernoulliEdgeProbabilities) {
  Xoshiro256 rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, BernoulliFrequencyMatchesP) {
  Xoshiro256 rng(37);
  const double p = 0.3;
  int successes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) successes += rng.bernoulli(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(successes) / n, p, 0.01);
}

TEST(Xoshiro256, GaussianMoments) {
  Xoshiro256 rng(41);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Xoshiro256, GaussianShiftScale) {
  Xoshiro256 rng(43);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Xoshiro256, GammaMeanEqualsShape) {
  Xoshiro256 rng(47);
  for (const double shape : {0.5, 1.0, 2.5, 7.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.08 * shape + 0.02) << "shape=" << shape;
  }
}

TEST(Xoshiro256, BetaMeanAndSupport) {
  Xoshiro256 rng(53);
  const double a = 2.0, b = 5.0;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.beta(a, b);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, a / (a + b), 0.01);
}

TEST(Xoshiro256, LongJumpDecorrelates) {
  Xoshiro256 a(11);
  Xoshiro256 b(11);
  b.long_jump();
  int agree = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++agree;
  }
  EXPECT_EQ(agree, 0);
}

TEST(DeriveSeeds, CountAndUniqueness) {
  const auto seeds = derive_seeds(2024, 256);
  ASSERT_EQ(seeds.size(), 256u);
  const std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 256u);
}

TEST(DeriveSeeds, Deterministic) {
  EXPECT_EQ(derive_seeds(7, 10), derive_seeds(7, 10));
  EXPECT_NE(derive_seeds(7, 10), derive_seeds(8, 10));
}

// The shard scheduler's counter-based access must reproduce the sequential
// stream exactly — this pins sharded and unsharded drivers to identical
// per-replication seeds.
TEST(DeriveSeedAt, MatchesSequentialStream) {
  for (const std::uint64_t master : {0ull, 7ull, 20170605ull, ~0ull}) {
    const auto seeds = derive_seeds(master, 300);
    for (const std::size_t i : {0u, 1u, 2u, 17u, 128u, 299u}) {
      EXPECT_EQ(derive_seed_at(master, i), seeds[i]) << master << "/" << i;
    }
  }
}

TEST(Shuffle, ProducesPermutation) {
  Xoshiro256 rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  shuffle(shuffled, rng);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Shuffle, ActuallyPermutes) {
  Xoshiro256 rng(3);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  shuffle(shuffled, rng);
  EXPECT_NE(shuffled, v);
}

// Property sweep: uniform_int(n) stays within range for many n.
class UniformIntRange : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIntRange, StaysInRange) {
  Xoshiro256 rng(GetParam());
  for (const std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_int(n), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformIntRange,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ncb
