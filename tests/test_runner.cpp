#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/dfl_cso.hpp"
#include "core/dfl_csr.hpp"
#include "core/dfl_sso.hpp"
#include "core/dfl_ssr.hpp"
#include "core/random_policy.hpp"
#include "graph/generators.hpp"

namespace ncb {
namespace {

/// Deterministic instance: constant rewards equal to the mean, so realized
/// regret is exactly computable.
BanditInstance constant_instance(Graph g, const std::vector<double>& values) {
  std::vector<DistributionPtr> arms;
  for (const double v : values) arms.push_back(std::make_unique<ConstantDist>(v));
  return BanditInstance(std::move(g), std::move(arms));
}

TEST(OptimalValue, AllScenariosOnPathInstance) {
  const auto inst =
      constant_instance(path_graph(4), {0.1, 0.8, 0.3, 0.6});
  EXPECT_DOUBLE_EQ(optimal_value(inst, Scenario::kSso), 0.8);
  EXPECT_NEAR(optimal_value(inst, Scenario::kSsr), 1.7, 1e-12);  // arm 2
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(inst.graph()), 2));
  // CSO: best pair {1,3} → 1.4.
  EXPECT_NEAR(optimal_value(inst, Scenario::kCso, family.get()), 1.4, 1e-12);
  // CSR: full coverage 1.8 (e.g. {0,2}).
  EXPECT_NEAR(optimal_value(inst, Scenario::kCsr, family.get()), 1.8, 1e-12);
}

TEST(OptimalValue, FamilyRequiredForCombinatorial) {
  const auto inst = constant_instance(path_graph(3), {0.5, 0.5, 0.5});
  EXPECT_THROW((void)optimal_value(inst, Scenario::kCso), std::invalid_argument);
}

TEST(OptimalStrategy, FindsArgmax) {
  const auto inst = constant_instance(path_graph(4), {0.1, 0.8, 0.3, 0.6});
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(inst.graph()), 2));
  const StrategyId cso = optimal_strategy(inst, Scenario::kCso, *family);
  EXPECT_EQ(family->strategy(cso), (ArmSet{1, 3}));
  EXPECT_THROW((void)optimal_strategy(inst, Scenario::kSso, *family),
               std::invalid_argument);
}

TEST(RunSinglePlay, NonPositiveHorizonThrows) {
  const auto inst = constant_instance(empty_graph(2), {0.9, 0.4});
  Environment env(inst, 1);
  RandomPolicy policy(3);
  RunnerOptions opts;
  opts.horizon = 0;
  EXPECT_THROW((void)run_single_play(policy, env, Scenario::kSso, opts),
               std::invalid_argument);
}

TEST(RunnerOptionsValidation, NamesTheOffendingField) {
  RunnerOptions opts;
  EXPECT_NO_THROW(validate_runner_options(opts));

  opts.horizon = -3;
  try {
    validate_runner_options(opts);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("RunnerOptions.horizon"),
              std::string::npos)
        << e.what();
  }

  opts.horizon = 100;
  for (const double bad : {-0.1, 1.5}) {
    opts.observation_drop_prob = bad;
    try {
      validate_runner_options(opts);
      FAIL() << "expected invalid_argument for drop prob " << bad;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(
          std::string(e.what()).find("RunnerOptions.observation_drop_prob"),
          std::string::npos)
          << e.what();
    }
  }
  // The boundary values are legal.
  for (const double ok : {0.0, 1.0}) {
    opts.observation_drop_prob = ok;
    EXPECT_NO_THROW(validate_runner_options(opts));
  }
}

TEST(RunnerOptionsValidation, RunnersRejectBadDropProbability) {
  const auto inst = constant_instance(empty_graph(2), {0.9, 0.4});
  Environment env(inst, 1);
  RandomPolicy policy(3);
  RunnerOptions opts;
  opts.observation_drop_prob = 1.5;
  EXPECT_THROW((void)run_single_play(policy, env, Scenario::kSso, opts),
               std::invalid_argument);

  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(inst.graph()), 2));
  DflCso combo(family);
  Environment env2(inst, 1);
  EXPECT_THROW(
      (void)run_combinatorial(combo, *family, env2, Scenario::kCso, opts),
      std::invalid_argument);
}

TEST(RunSinglePlay, DeterministicRegretWithConstantArms) {
  // Two disconnected arms, 0.9 vs 0.4: every slot playing arm 1 costs 0.5.
  const auto inst = constant_instance(empty_graph(2), {0.9, 0.4});
  Environment env(inst, 1);
  RandomPolicy policy(3);
  RunnerOptions opts;
  opts.horizon = 100;
  const auto result = run_single_play(policy, env, Scenario::kSso, opts);
  ASSERT_EQ(result.per_slot_regret.size(), 100u);
  for (std::size_t t = 0; t < 100; ++t) {
    const double r = result.per_slot_regret[t];
    EXPECT_TRUE(r == 0.0 || std::abs(r - 0.5) < 1e-12);
  }
  // Cumulative = prefix sums.
  double running = 0.0;
  for (std::size_t t = 0; t < 100; ++t) {
    running += result.per_slot_regret[t];
    EXPECT_NEAR(result.cumulative_regret[t], running, 1e-9);
  }
  // Play counts sum to horizon.
  EXPECT_EQ(std::accumulate(result.play_counts.begin(),
                            result.play_counts.end(), std::int64_t{0}),
            100);
}

TEST(RunSinglePlay, SsrRegretUsesSideRewards) {
  // Path 0-1-2 with constants: u = [a+b, a+b+c, b+c].
  const auto inst = constant_instance(path_graph(3), {0.5, 0.2, 0.4});
  Environment env(inst, 1);
  DflSsr policy;
  RunnerOptions opts;
  opts.horizon = 50;
  const auto result = run_single_play(policy, env, Scenario::kSsr, opts);
  EXPECT_NEAR(result.optimal_per_slot, 1.1, 1e-12);  // u_1 = 0.5+0.2+0.4
  // With constant rewards the policy converges; total reward equals the sum
  // of realized side rewards, bounded by horizon · u*.
  EXPECT_LE(result.total_reward, 50 * 1.1 + 1e-9);
  EXPECT_GE(result.total_reward, 0.0);
}

TEST(RunSinglePlay, PseudoRegretNonNegative) {
  Xoshiro256 rng(5);
  const Graph g = erdos_renyi(8, 0.4, rng);
  auto inst = random_bernoulli_instance(g, rng);
  Environment env(inst, 7);
  DflSso policy;
  RunnerOptions opts;
  opts.horizon = 500;
  const auto result = run_single_play(policy, env, Scenario::kSso, opts);
  for (const double pr : result.per_slot_pseudo_regret) {
    EXPECT_GE(pr, -1e-12);
  }
}

TEST(RunSinglePlay, RecordSeriesOffStillReportsFinal) {
  const auto inst = constant_instance(empty_graph(2), {0.9, 0.4});
  Environment env(inst, 1);
  RandomPolicy policy(3);
  RunnerOptions opts;
  opts.horizon = 100;
  opts.record_series = false;
  const auto result = run_single_play(policy, env, Scenario::kSso, opts);
  EXPECT_TRUE(result.per_slot_regret.empty());
  ASSERT_EQ(result.cumulative_regret.size(), 1u);
  EXPECT_GE(result.cumulative_regret[0], 0.0);
}

TEST(RunSinglePlay, WrongScenarioThrows) {
  const auto inst = constant_instance(empty_graph(2), {0.9, 0.4});
  Environment env(inst, 1);
  RandomPolicy policy(1);
  RunnerOptions opts;
  EXPECT_THROW((void)run_single_play(policy, env, Scenario::kCso, opts),
               std::invalid_argument);
}

TEST(RunCombinatorial, CsoRegretDeterministicWithConstants) {
  const auto inst = constant_instance(path_graph(4), {0.1, 0.8, 0.3, 0.6});
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(inst.graph()), 2));
  Environment env(inst, 1);
  DflCso policy(family);
  RunnerOptions opts;
  opts.horizon = 300;
  const auto result = run_combinatorial(policy, *family, env, Scenario::kCso, opts);
  EXPECT_NEAR(result.optimal_per_slot, 1.4, 1e-12);
  // With constant arms, the index policy must lock onto the optimum; the
  // last slots have zero regret.
  EXPECT_NEAR(result.per_slot_regret.back(), 0.0, 1e-9);
}

TEST(RunCombinatorial, NonPositiveHorizonThrows) {
  const auto inst = constant_instance(path_graph(4), {0.1, 0.8, 0.3, 0.6});
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(inst.graph()), 2));
  Environment env(inst, 1);
  DflCso policy(family);
  RunnerOptions opts;
  opts.horizon = 0;
  EXPECT_THROW(
      (void)run_combinatorial(policy, *family, env, Scenario::kCso, opts),
      std::invalid_argument);
}

TEST(RunCombinatorial, CsrUsesCoverageReward) {
  const auto inst = constant_instance(path_graph(4), {0.1, 0.8, 0.3, 0.6});
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(inst.graph()), 2));
  Environment env(inst, 1);
  DflCsr policy(family);
  RunnerOptions opts;
  opts.horizon = 300;
  const auto result = run_combinatorial(policy, *family, env, Scenario::kCsr, opts);
  EXPECT_NEAR(result.optimal_per_slot, 1.8, 1e-12);
  EXPECT_NEAR(result.per_slot_regret.back(), 0.0, 1e-9);
}

TEST(RunCombinatorial, PlayCountsCountComponentArms) {
  const auto inst = constant_instance(path_graph(4), {0.1, 0.8, 0.3, 0.6});
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(inst.graph()), 2, /*exact=*/true));
  Environment env(inst, 1);
  DflCso policy(family);
  RunnerOptions opts;
  opts.horizon = 50;
  const auto result = run_combinatorial(policy, *family, env, Scenario::kCso, opts);
  // Exactly M = 2 arms played per slot.
  EXPECT_EQ(std::accumulate(result.play_counts.begin(),
                            result.play_counts.end(), std::int64_t{0}),
            100);
}

TEST(RunCombinatorial, MismatchedFamilyThrows) {
  const auto inst = constant_instance(path_graph(4), {0.1, 0.8, 0.3, 0.6});
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(path_graph(3)), 2));
  Environment env(inst, 1);
  DflCso policy(family);
  RunnerOptions opts;
  EXPECT_THROW(
      (void)run_combinatorial(policy, *family, env, Scenario::kCso, opts),
      std::invalid_argument);
}

TEST(RunResult, FinalAverageRegret) {
  RunResult r;
  r.cumulative_regret = {1.0, 2.0, 3.0};
  EXPECT_NEAR(r.final_average_regret(), 1.0, 1e-12);
  RunResult empty;
  EXPECT_DOUBLE_EQ(empty.final_average_regret(), 0.0);
}

}  // namespace
}  // namespace ncb
