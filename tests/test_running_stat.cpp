#include "util/running_stat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace ncb {
namespace {

TEST(RunningStat, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStat, KnownMeanAndVariance) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, StdErrAndCi) {
  RunningStat s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i % 2));
  EXPECT_NEAR(s.stderr_mean(), s.stddev() / 10.0, 1e-12);
  EXPECT_NEAR(s.ci95_halfwidth(), 1.96 * s.stderr_mean(), 1e-12);
}

TEST(RunningStat, MergeMatchesSequential) {
  Xoshiro256 rng(77);
  RunningStat whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    whole.add(x);
    (i < 200 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, RestoreMergeIsExact) {
  // The distributed-replay wire contract: shipping the raw Welford state
  // (count, mean, m2, min, max) and merging it into an empty accumulator
  // must reproduce the original bitwise — the exact-copy branch of merge.
  Xoshiro256 rng(20170605);
  RunningStat original;
  for (int i = 0; i < 777; ++i) original.add(rng.gaussian(0.3, 1.7));

  const RunningStat restored =
      RunningStat::restore(original.count(), original.mean(), original.m2(),
                           original.min(), original.max());
  RunningStat merged;
  merged.merge(restored);

  EXPECT_EQ(merged.count(), original.count());
  EXPECT_EQ(merged.mean(), original.mean());  // bitwise, not NEAR
  EXPECT_EQ(merged.m2(), original.m2());
  EXPECT_EQ(merged.min(), original.min());
  EXPECT_EQ(merged.max(), original.max());
  EXPECT_EQ(merged.variance(), original.variance());
  EXPECT_EQ(merged.stderr_mean(), original.stderr_mean());
}

TEST(SeriesStat, AggregatesPerIndex) {
  SeriesStat s;
  s.add_series({1.0, 2.0, 3.0});
  s.add_series({3.0, 4.0, 5.0});
  ASSERT_EQ(s.length(), 3u);
  EXPECT_EQ(s.means(), (std::vector<double>{2.0, 3.0, 4.0}));
  EXPECT_EQ(s.at(0).count(), 2u);
}

TEST(SeriesStat, LengthMismatchThrows) {
  SeriesStat s;
  s.add_series({1.0, 2.0});
  EXPECT_THROW(s.add_series({1.0}), std::invalid_argument);
}

TEST(SeriesStat, MergeMatchesCombined) {
  SeriesStat a, b, all;
  const std::vector<std::vector<double>> data{
      {1, 2}, {3, 4}, {5, 6}, {7, 8}};
  for (std::size_t i = 0; i < data.size(); ++i) {
    all.add_series(data[i]);
    (i < 2 ? a : b).add_series(data[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.means(), all.means());
  EXPECT_EQ(a.stddevs(), all.stddevs());
}

TEST(SeriesStat, MergeIntoEmpty) {
  SeriesStat a, b;
  b.add_series({1.0, 2.0});
  a.merge(b);
  EXPECT_EQ(a.length(), 2u);
  EXPECT_EQ(a.means(), (std::vector<double>{1.0, 2.0}));
}

TEST(SeriesStat, StddevPerIndex) {
  SeriesStat s;
  s.add_series({0.0});
  s.add_series({2.0});
  EXPECT_NEAR(s.stddevs()[0], std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace ncb
