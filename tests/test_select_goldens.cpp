// Golden select-trace regression for the index-policy hot path.
//
// The incremental dirty-set index cache (SingleIndexPolicy) must be
// behaviorally invisible: for a fixed seed, every policy must select the
// exact same arm sequence AND consume the exact same number of tie-break
// RNG draws as the historical full-recompute scan. The expectations below
// were captured from the pre-refactor implementation (one full index
// recompute + inline reservoir argmax per slot) and must never change —
// a diff here means the cache or the block-skip argmax altered either the
// comparison results or the reservoir draw sequence.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/index_policy.hpp"
#include "core/policy_factory.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

struct GoldenTrace {
  const char* policy;
  const char* graph;
  std::uint64_t draws;        // total uniform_int tie-break calls
  std::uint64_t selection_hash;  // FNV-1a over all 300 selections
  std::vector<ArmId> head;    // first 24 selections
};

// Captured from the pre-refactor build: 13 index policies x 3 graphs,
// K = 25, horizon 200, 300 slots, Bernoulli(0.5) rewards seeded per cell.
const GoldenTrace kGoldens[] = {
    {"dfl-sso", "er", 106, 15625136917296196934ULL,
     {5, 13, 18, 7, 17, 11, 4, 22, 22, 0, 7, 11,
      22, 18, 22, 22, 4, 22, 22, 22, 22, 6, 6, 0}},
    {"dfl-sso", "star", 1273, 3990970594933281696ULL,
     {5, 11, 7, 10, 4, 1, 6, 2, 23, 8, 22, 13,
      24, 15, 20, 21, 12, 14, 16, 19, 18, 9, 17, 3}},
    {"dfl-sso", "ws", 131, 4697186604737952841ULL,
     {5, 18, 24, 12, 23, 4, 18, 18, 4, 11, 24, 24,
      11, 11, 17, 18, 18, 11, 4, 4, 15, 24, 18, 18}},
    {"dfl-sso-greedy", "er", 94, 11279579946982139167ULL,
     {5, 13, 20, 16, 2, 6, 5, 5, 5, 16, 16, 16,
      3, 13, 13, 13, 13, 13, 13, 13, 13, 13, 13, 13}},
    {"dfl-sso-greedy", "star", 195, 6624631760003754912ULL,
     {5, 0, 16, 15, 19, 17, 20, 12, 18, 12, 11, 15,
      14, 21, 19, 16, 21, 19, 0, 21, 21, 21, 15, 15}},
    {"dfl-sso-greedy", "ws", 142, 5141797725270707638ULL,
     {5, 7, 10, 23, 18, 23, 15, 18, 18, 23, 23, 23,
      18, 18, 18, 23, 23, 18, 18, 18, 18, 10, 24, 20}},
    {"dfl-ssr", "er", 131, 11873513171556065334ULL,
     {5, 24, 4, 7, 3, 11, 8, 6, 21, 8, 21, 19,
      21, 21, 21, 21, 6, 6, 6, 6, 6, 6, 6, 6}},
    {"dfl-ssr", "star", 272, 16284298950606737687ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 0, 0, 0, 0, 0, 0, 0}},
    {"dfl-ssr", "ws", 209, 6191452348577305951ULL,
     {5, 24, 7, 11, 10, 14, 17, 19, 17, 19, 19, 7,
      9, 7, 7, 7, 7, 7, 7, 9, 9, 9, 9, 9}},
    {"dfl-ssr-meansum", "er", 119, 12312371220338669695ULL,
     {5, 24, 4, 7, 3, 11, 16, 6, 6, 13, 6, 6,
      6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6}},
    {"dfl-ssr-meansum", "star", 272, 16284298950606737687ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 0, 0, 0, 0, 0, 0, 0}},
    {"dfl-ssr-meansum", "ws", 128, 17962383397423382552ULL,
     {5, 24, 7, 11, 10, 14, 17, 19, 10, 10, 10, 10,
      10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10}},
    {"moss", "er", 1120, 9054969036191151204ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 8, 15, 23, 9, 19, 18, 21}},
    {"moss", "star", 1025, 8586567361670371476ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 8, 17, 19, 9, 18, 15, 21}},
    {"moss", "ws", 895, 6715307335250529287ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 17, 21, 18, 15, 9, 23, 19}},
    {"moss-anytime", "er", 1108, 8413983781299614173ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 8, 23, 19, 17, 18, 15, 9}},
    {"moss-anytime", "star", 1207, 16998218973698874616ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 9, 21, 19, 15, 17, 8, 18}},
    {"moss-anytime", "ws", 1219, 3738129067412886389ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 8, 18, 15, 19, 9, 23, 17}},
    {"ucb1", "er", 1755, 9903405452075667842ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 8, 15, 23, 9, 19, 21, 17}},
    {"ucb1", "star", 1546, 2917248459311623084ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 8, 18, 15, 19, 9, 17, 23}},
    {"ucb1", "ws", 1473, 11873432958548604553ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 8, 17, 19, 9, 15, 18, 21}},
    {"ucb-n", "er", 199, 12534210220346023309ULL,
     {5, 13, 18, 7, 17, 11, 4, 0, 5, 17, 17, 17,
      7, 23, 18, 13, 13, 23, 5, 7, 0, 7, 23, 17}},
    {"ucb-n", "star", 1366, 3593071706144586868ULL,
     {5, 11, 7, 10, 4, 1, 6, 2, 23, 8, 22, 13,
      24, 15, 20, 21, 12, 14, 16, 19, 18, 9, 17, 3}},
    {"ucb-n", "ws", 144, 1025311899393102975ULL,
     {5, 18, 24, 23, 13, 23, 18, 4, 11, 24, 18, 23,
      4, 24, 11, 23, 18, 4, 23, 4, 4, 11, 24, 4}},
    {"ucb-maxn", "er", 116, 5697256251007660468ULL,
     {5, 3, 13, 17, 1, 24, 15, 19, 8, 17, 17, 15,
      8, 19, 21, 13, 19, 15, 13, 15, 17, 13, 17, 13}},
    {"ucb-maxn", "star", 423, 7119602057741339944ULL,
     {5, 0, 9, 22, 11, 10, 17, 2, 7, 13, 4, 23,
      3, 8, 16, 20, 19, 7, 9, 20, 3, 16, 4, 23}},
    {"ucb-maxn", "ws", 114, 8585433191981458715ULL,
     {5, 7, 1, 20, 13, 2, 12, 0, 0, 20, 7, 12,
      20, 0, 16, 13, 0, 9, 0, 16, 20, 20, 24, 4}},
    {"kl-ucb", "er", 1007, 16378383298210177917ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 8, 21, 17, 9, 19, 15, 18}},
    {"kl-ucb", "star", 860, 15045435390681784153ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 8, 23, 19, 17, 18, 15, 9}},
    {"kl-ucb", "ws", 1057, 3365471839233018851ULL,
     {5, 24, 4, 7, 1, 20, 3, 22, 13, 6, 12, 10,
      16, 2, 11, 14, 0, 8, 15, 23, 9, 19, 17, 18}},
    {"kl-ucb-n", "er", 158, 9069687499416789077ULL,
     {5, 13, 18, 7, 17, 11, 4, 23, 10, 7, 23, 7,
      20, 11, 20, 11, 3, 16, 20, 20, 18, 18, 3, 11}},
    {"kl-ucb-n", "star", 929, 2536625247988525439ULL,
     {5, 11, 7, 10, 4, 1, 6, 2, 23, 8, 22, 13,
      24, 15, 20, 21, 12, 14, 16, 19, 18, 9, 17, 3}},
    {"kl-ucb-n", "ws", 138, 7670111143734666254ULL,
     {5, 18, 24, 12, 23, 13, 4, 23, 23, 14, 4, 4,
      4, 4, 4, 4, 6, 14, 23, 8, 8, 12, 12, 13}},
    {"sw-dfl-sso", "er", 242, 9407991070716895131ULL,
     {5, 13, 18, 7, 17, 11, 4, 24, 8, 8, 6, 2,
      7, 5, 7, 7, 7, 7, 7, 2, 7, 7, 7, 7}},
    {"sw-dfl-sso", "star", 1132, 4759844349287503180ULL,
     {5, 11, 7, 10, 4, 1, 6, 2, 24, 9, 17, 16,
      12, 20, 14, 21, 3, 18, 8, 13, 15, 22, 23, 19}},
    {"sw-dfl-sso", "ws", 264, 3175406172698987408ULL,
     {5, 18, 24, 13, 23, 12, 23, 22, 9, 18, 19, 19,
      23, 23, 23, 23, 9, 11, 11, 11, 11, 11, 1, 11}},
    {"d-dfl-sso", "er", 116, 15310594661388263481ULL,
     {5, 13, 18, 7, 17, 11, 4, 24, 17, 13, 11, 8,
      13, 6, 4, 4, 18, 11, 18, 18, 6, 8, 8, 8}},
    {"d-dfl-sso", "star", 331, 4476316292021332157ULL,
     {5, 11, 7, 10, 4, 1, 6, 2, 23, 8, 22, 13,
      24, 15, 20, 21, 12, 14, 16, 19, 18, 9, 17, 3}},
    {"d-dfl-sso", "ws", 84, 1225355607985734572ULL,
     {5, 18, 24, 12, 23, 3, 9, 13, 4, 24, 24, 5,
      5, 5, 5, 5, 5, 3, 3, 3, 24, 24, 24, 24}},
};

std::uint64_t fnv1a(const std::vector<ArmId>& xs) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const ArmId x : xs) {
    for (int b = 0; b < 4; ++b) {
      h ^= static_cast<std::uint64_t>(
          (static_cast<std::uint32_t>(x) >> (8 * b)) & 0xff);
      h *= 1099511628211ULL;
    }
  }
  return h;
}

// Policy/graph order must match the capture harness: the reward stream for
// cell (pi, gi) is seeded 1000*(pi+1)+gi.
const std::vector<std::string> kPolicies = {
    "dfl-sso",  "dfl-sso-greedy", "dfl-ssr",  "dfl-ssr-meansum",
    "moss",     "moss-anytime",   "ucb1",     "ucb-n",
    "ucb-maxn", "kl-ucb",         "kl-ucb-n", "sw-dfl-sso",
    "d-dfl-sso"};
const std::vector<std::string> kGraphNames = {"er", "star", "ws"};

Graph make_graph(const std::string& name) {
  if (name == "er") {
    Xoshiro256 gen(11);
    return erdos_renyi(25, 0.3, gen);
  }
  if (name == "star") return star_graph(25);
  Xoshiro256 gen(13);
  return watts_strogatz(25, 4, 0.2, gen);
}

TEST(SelectGoldens, TraceMatchesPreRefactorCapture) {
  constexpr TimeSlot kHorizon = 200;
  constexpr TimeSlot kSlots = 300;
  for (const GoldenTrace& golden : kGoldens) {
    std::size_t pi = 0, gi = 0;
    while (kPolicies[pi] != golden.policy) ++pi;
    while (kGraphNames[gi] != golden.graph) ++gi;
    SCOPED_TRACE(std::string(golden.policy) + " on " + golden.graph);

    const auto policy = make_single_play_policy(golden.policy, kHorizon, 123);
    auto* idx = dynamic_cast<SingleIndexPolicy*>(policy.get());
    ASSERT_NE(idx, nullptr);
    const Graph g = make_graph(golden.graph);
    policy->reset(g);

    Xoshiro256 rewards(1000 * (pi + 1) + gi);
    std::vector<Observation> batch;
    std::vector<ArmId> selections;
    selections.reserve(static_cast<std::size_t>(kSlots));
    for (TimeSlot t = 1; t <= kSlots; ++t) {
      const ArmId a = policy->select(t);
      selections.push_back(a);
      batch.clear();
      for (const ArmId j : g.closed_neighborhood(a)) {
        batch.push_back({j, rewards.bernoulli(0.5) ? 1.0 : 0.0});
      }
      policy->observe(a, t, ObservationSpan(batch.data(), batch.size()));
    }

    for (std::size_t i = 0; i < golden.head.size(); ++i) {
      EXPECT_EQ(selections[i], golden.head[i]) << "slot " << (i + 1);
    }
    EXPECT_EQ(fnv1a(selections), golden.selection_hash);
    EXPECT_EQ(idx->tie_break_draws(), golden.draws)
        << "tie-break RNG call count diverged from the full-recompute scan";
  }
}

// Every (policy, graph) cell of the capture grid must be present above —
// a silently missing golden would let a policy regress unnoticed.
TEST(SelectGoldens, GridIsComplete) {
  EXPECT_EQ(std::size(kGoldens), kPolicies.size() * kGraphNames.size());
  for (const auto& p : kPolicies) {
    for (const auto& gname : kGraphNames) {
      bool found = false;
      for (const GoldenTrace& golden : kGoldens) {
        if (p == golden.policy && gname == golden.graph) found = true;
      }
      EXPECT_TRUE(found) << p << " on " << gname << " missing";
    }
  }
}

}  // namespace
}  // namespace ncb
