// The online decision service: serve frame codecs + frame_type_name,
// Hello validation with the serve schema, DecisionEngine propensity math
// and determinism, and the end-to-end reactor contract — the same request
// stream served over 1 vs 4 connections yields identical (action,
// propensity) per decision_id and a byte-identical event log (pinned by a
// golden FNV-1a hash).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "serve/decision_engine.hpp"
#include "serve/event_log.hpp"
#include "serve/server.hpp"

namespace fs = std::filesystem;

namespace ncb::serve {
namespace {

using dist::MsgType;

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "ncb_serve_XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ignored;
    fs::remove_all(path, ignored);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

Graph ring_graph(std::size_t k) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < k; ++i) {
    edges.emplace_back(static_cast<ArmId>(i), static_cast<ArmId>((i + 1) % k));
  }
  return Graph(k, edges);
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ------------------------------------------------------------- codecs ---

TEST(ServeCodec, DecideRequestRoundTrips) {
  dist::DecideRequestMsg msg;
  msg.request_id = 0xfeedfacecafef00dULL;
  msg.slot = 42;
  msg.user_key = "user-key with spaces \x01";
  const dist::DecideRequestMsg back =
      dist::decode_decide_request(dist::encode_decide_request(msg));
  EXPECT_EQ(back.request_id, msg.request_id);
  EXPECT_EQ(back.slot, msg.slot);
  EXPECT_EQ(back.user_key, msg.user_key);

  dist::DecideRequestMsg empty_key;
  EXPECT_EQ(dist::decode_decide_request(dist::encode_decide_request(empty_key))
                .user_key,
            "");
}

TEST(ServeCodec, DecideReplyRoundTripsExactDouble) {
  dist::DecideReplyMsg msg;
  msg.request_id = 7;
  msg.slot = 9;
  msg.decision_id = 1234567;
  msg.action = 4095;
  msg.propensity = 0.1 + 0.2;  // a value with an inexact decimal expansion
  const dist::DecideReplyMsg back =
      dist::decode_decide_reply(dist::encode_decide_reply(msg));
  EXPECT_EQ(back.request_id, msg.request_id);
  EXPECT_EQ(back.slot, msg.slot);
  EXPECT_EQ(back.decision_id, msg.decision_id);
  EXPECT_EQ(back.action, msg.action);
  EXPECT_EQ(back.propensity, msg.propensity);  // bit-exact, not approximate
}

TEST(ServeCodec, FeedbackRoundTrips) {
  dist::FeedbackMsg msg;
  msg.decision_id = 99;
  msg.reward = -1.5;
  const dist::FeedbackMsg back =
      dist::decode_feedback(dist::encode_feedback(msg));
  EXPECT_EQ(back.decision_id, msg.decision_id);
  EXPECT_EQ(back.reward, msg.reward);
}

TEST(ServeCodec, TruncatedAndOversizedPayloadsThrow) {
  dist::DecideRequestMsg msg;
  msg.user_key = "k";
  std::string bytes = dist::encode_decide_request(msg);
  bytes.pop_back();
  EXPECT_THROW((void)dist::decode_decide_request(bytes),
               std::invalid_argument);
  bytes = dist::encode_decide_reply({});
  bytes.push_back('\0');  // trailing byte: finish() must reject
  EXPECT_THROW((void)dist::decode_decide_reply(bytes), std::invalid_argument);
}

TEST(ServeProtocol, FrameTypeNames) {
  EXPECT_STREQ(dist::frame_type_name(MsgType::kHello), "Hello");
  EXPECT_STREQ(dist::frame_type_name(MsgType::kDecideRequest),
               "DecideRequest");
  EXPECT_STREQ(dist::frame_type_name(MsgType::kDecideReply), "DecideReply");
  EXPECT_STREQ(dist::frame_type_name(MsgType::kFeedback), "Feedback");
  EXPECT_STREQ(dist::frame_type_name(static_cast<MsgType>(42)), "unknown");
  EXPECT_EQ(dist::frame_type_label(8), "DecideReply (8)");
  EXPECT_EQ(dist::frame_type_label(42), "unknown (42)");
}

TEST(ServeProtocol, ValidateHelloChecksServeSchema) {
  dist::HelloMsg hello;
  hello.schema = dist::kServeWireSchema;
  EXPECT_FALSE(dist::validate_hello(hello, dist::kServeWireSchema));

  dist::HelloMsg wrong_schema = hello;
  wrong_schema.schema = dist::kServeWireSchema + 7;
  EXPECT_TRUE(dist::validate_hello(wrong_schema, dist::kServeWireSchema));

  dist::HelloMsg wrong_magic = hello;
  wrong_magic.magic = 0x12345678;
  EXPECT_TRUE(dist::validate_hello(wrong_magic, dist::kServeWireSchema));

  dist::HelloMsg wrong_version = hello;
  wrong_version.protocol_version = dist::kProtocolVersion + 1;
  EXPECT_TRUE(dist::validate_hello(wrong_version, dist::kServeWireSchema));
}

// ------------------------------------------------------------- engine ---

TEST(DecisionEngine, RejectsBadConfiguration) {
  EngineOptions options;
  EXPECT_THROW(DecisionEngine(Graph(0), options), std::invalid_argument);
  options.epsilon = 1.5;
  EXPECT_THROW(DecisionEngine(ring_graph(4), options), std::invalid_argument);
  options.epsilon = 0.1;
  options.policy_spec = "no-such-policy";
  EXPECT_THROW(DecisionEngine(ring_graph(4), options), std::invalid_argument);
}

TEST(DecisionEngine, DecisionIdsCountUpAndSlotIsEchoed) {
  EngineOptions options;
  options.policy_spec = "eps-greedy:eps=0";
  options.epsilon = 0.0;
  DecisionEngine engine(ring_graph(4), options);
  EXPECT_EQ(engine.num_arms(), 4u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    const Decision d = engine.decide("k", /*slot=*/100 + i);
    EXPECT_EQ(d.decision_id, i);
    EXPECT_EQ(d.slot, 100 + i);
    EXPECT_TRUE(engine.report(d.decision_id, 0.5));
  }
  EXPECT_EQ(engine.decisions(), 5u);
  EXPECT_EQ(engine.feedbacks(), 5u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(DecisionEngine, PropensityIsEpsOverKPlusGreedyMass) {
  // With exploration probability e over K arms the logged propensity must
  // be exactly e/K (explored off-greedy) or 1-e+e/K (served the greedy
  // arm); anything else breaks inverse-propensity evaluation of the log.
  const double eps = 0.5;
  const std::size_t K = 8;
  EngineOptions options;
  options.policy_spec = "eps-greedy:eps=0";
  options.epsilon = eps;
  options.seed = 12345;
  DecisionEngine engine(ring_graph(K), options);
  const double explore_p = eps / static_cast<double>(K);
  const double greedy_p = 1.0 - eps + explore_p;
  int explored = 0;
  int greedy = 0;
  for (int i = 0; i < 400; ++i) {
    const Decision d = engine.decide("user-" + std::to_string(i % 7));
    if (d.propensity == explore_p) {
      ++explored;
    } else if (d.propensity == greedy_p) {
      ++greedy;
    } else {
      FAIL() << "propensity " << d.propensity << " is neither " << explore_p
             << " nor " << greedy_p;
    }
    engine.report(d.decision_id, (i % 2) ? 1.0 : 0.0);
  }
  EXPECT_GT(explored, 0);
  EXPECT_GT(greedy, 0);
}

TEST(DecisionEngine, EpsilonZeroIsPureGreedyWithPropensityOne) {
  EngineOptions options;
  options.policy_spec = "eps-greedy:eps=0";
  options.epsilon = 0.0;
  DecisionEngine engine(ring_graph(4), options);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(engine.decide("k").propensity, 1.0);
  }
}

TEST(DecisionEngine, EpsilonOneIsUniformWithPropensityOneOverK) {
  EngineOptions options;
  options.policy_spec = "eps-greedy:eps=0";
  options.epsilon = 1.0;
  const std::size_t K = 16;
  DecisionEngine engine(ring_graph(K), options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(engine.decide("k").propensity, 1.0 / static_cast<double>(K));
  }
}

TEST(DecisionEngine, UnknownAndDuplicateFeedbackAreRejected) {
  EngineOptions options;
  options.policy_spec = "eps-greedy:eps=0";
  options.epsilon = 0.0;
  DecisionEngine engine(ring_graph(4), options);
  EXPECT_FALSE(engine.report(7, 1.0));  // never decided
  const Decision d = engine.decide("k");
  EXPECT_TRUE(engine.report(d.decision_id, 1.0));
  EXPECT_FALSE(engine.report(d.decision_id, 1.0));  // already joined
  EXPECT_EQ(engine.unknown_feedbacks(), 1u);   // the never-issued id
  EXPECT_EQ(engine.duplicate_feedbacks(), 1u); // the re-reported one
  EXPECT_EQ(engine.feedbacks(), 1u);
}

TEST(DecisionEngine, IdenticalCallSequencesAreBitIdentical) {
  // The determinism contract: decisions depend only on the seed and the
  // global decide/report order — two engines fed the same sequence agree
  // on every (action, propensity) pair.
  EngineOptions options;
  options.policy_spec = "eps-greedy:eps=0";
  options.epsilon = 0.3;
  options.seed = 777;
  DecisionEngine a(ring_graph(12), options);
  DecisionEngine b(ring_graph(12), options);
  for (int i = 0; i < 300; ++i) {
    const std::string key = "user-" + std::to_string(i % 9);
    const Decision da = a.decide(key, static_cast<std::uint64_t>(i));
    const Decision db = b.decide(key, static_cast<std::uint64_t>(i));
    ASSERT_EQ(da.decision_id, db.decision_id) << i;
    ASSERT_EQ(da.action, db.action) << i;
    ASSERT_EQ(da.propensity, db.propensity) << i;
    const double reward = static_cast<double>((i * 13) % 10) / 10.0;
    a.report(da.decision_id, reward);
    b.report(db.decision_id, reward);
  }
}

TEST(DecisionEngine, LogRecordsDecisionsAndFeedbackInCallOrder) {
  TempDir dir;
  const std::string path = dir.file("engine.ncbl");
  {
    EventLog log({path});
    EngineOptions options;
    options.policy_spec = "eps-greedy:eps=0";
    options.epsilon = 0.0;
    DecisionEngine engine(ring_graph(4), options, &log);
    const Decision d1 = engine.decide("alice");
    const Decision d2 = engine.decide("bob");
    engine.report(d1.decision_id, 1.0);
    engine.report(d2.decision_id, 0.0);
    engine.report(999, 1.0);  // unknown: must NOT be logged
    log.close();
  }
  const EventLogScan scan = read_event_log(path);
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records[0].type, EventType::kDecision);
  EXPECT_EQ(scan.records[0].key, "alice");
  EXPECT_EQ(scan.records[1].key, "bob");
  EXPECT_EQ(scan.records[2].type, EventType::kFeedback);
  EXPECT_EQ(scan.records[2].decision_id, scan.records[0].decision_id);
  EXPECT_EQ(scan.joined, 2u);
}

// ------------------------------------------------------------- server ---

ssize_t send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    sent += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(sent);
}

int connect_retry(const std::string& path) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return -1;
}

/// Connects and completes the Hello/HelloAck handshake; returns the fd.
int handshake_client(const std::string& socket_path) {
  const int fd = connect_retry(socket_path);
  EXPECT_GE(fd, 0) << "server never started listening";
  if (fd < 0) return -1;
  dist::HelloMsg hello;
  hello.schema = dist::kServeWireSchema;
  dist::write_frame(fd, MsgType::kHello, dist::encode_hello(hello));
  const auto ack = dist::read_frame(fd);
  EXPECT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, MsgType::kHelloAck);
  dist::decode_hello_ack(ack->payload);
  return fd;
}

struct ServedDecision {
  std::uint64_t decision_id = 0;
  std::uint32_t action = 0;
  double propensity = 0.0;
};

/// One StatsRequest/StatsReply exchange on an already-handshaken fd.
dist::StatsReplyMsg poll_stats_once(int fd) {
  dist::write_frame(fd, MsgType::kStatsRequest, "");
  const auto frame = dist::read_frame(fd);
  EXPECT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kStatsReply);
  return dist::decode_stats_reply(frame->payload);
}

/// Value of the named entry in a StatsReply; -1 when absent. Unused in
/// the NCB_NO_METRICS configuration (its tests compile out).
[[maybe_unused]] std::int64_t stat_value(const dist::StatsReplyMsg& reply,
                                         const std::string& name) {
  for (const dist::StatsEntry& entry : reply.entries) {
    if (entry.name == name) return static_cast<std::int64_t>(entry.value);
  }
  return -1;
}

struct ScenarioResult {
  std::vector<ServedDecision> decisions;
  std::string log_bytes;
  ServerStats stats;
  dist::StatsReplyMsg final_stats;  ///< Only filled when polling.
  std::uint64_t background_polls = 0;
};

/// Serves `n` lockstep requests over `connections` round-robin client
/// sockets against a fresh engine + event log. The feedback for decision i
/// travels in the same send() as request i+1 (on whatever connection
/// carries i+1), so the server's processing order is globally sequential —
/// the engine sees an identical call sequence for ANY connection count.
ScenarioResult run_scenario(int connections, int n,
                            obs::MetricsRegistry* metrics = nullptr,
                            bool poll = false) {
  TempDir dir;
  const std::string socket_path = dir.file("serve.sock");
  const std::string log_path = dir.file("serve.ncbl");

  ScenarioResult result;
  {
    EventLog::Options log_options;
    log_options.path = log_path;
    log_options.metrics = metrics;
    EventLog log(log_options);
    EngineOptions engine_options;
    engine_options.policy_spec = "eps-greedy:eps=0";
    engine_options.epsilon = 0.25;
    engine_options.seed = 20170605;
    engine_options.metrics = metrics;
    DecisionEngine engine(ring_graph(16), engine_options, &log);

    std::atomic<bool> stop{false};
    ServerOptions server_options;
    server_options.socket_path = socket_path;
    server_options.should_stop = [&stop] { return stop.load(); };
    server_options.metrics = metrics;
    std::thread server([&] { result.stats = run_server(engine, server_options); });

    // Concurrent poller: hammers StatsRequest on its own connection while
    // decide/feedback traffic flows — the "telemetry observes, never
    // perturbs" invariant under actual interleaving.
    std::atomic<bool> poller_stop{false};
    std::thread poller;
    if (poll) {
      poller = std::thread([&] {
        const int fd = handshake_client(socket_path);
        if (fd < 0) return;
        while (!poller_stop.load()) {
          dist::write_frame(fd, MsgType::kStatsRequest, "");
          const auto frame = dist::read_frame(fd);
          if (!frame || frame->type != MsgType::kStatsReply) break;
          ++result.background_polls;
        }
        ::close(fd);
      });
    }

    std::vector<int> fds;
    try {
      for (int c = 0; c < connections; ++c) {
        const int fd = handshake_client(socket_path);
        if (fd < 0) throw std::runtime_error("handshake failed");
        fds.push_back(fd);
      }

      std::string pending_feedback;
      for (int i = 0; i < n; ++i) {
        const int fd = fds[static_cast<std::size_t>(i % connections)];
        dist::DecideRequestMsg request;
        request.request_id = static_cast<std::uint64_t>(i);
        request.slot = static_cast<std::uint64_t>(i);
        request.user_key = "user-" + std::to_string(i % 5);
        std::string out = std::move(pending_feedback);
        pending_feedback.clear();
        dist::append_frame(out, MsgType::kDecideRequest,
                           dist::encode_decide_request(request));
        if (send_all(fd, out) < 0) {
          throw std::runtime_error("send failed at request " +
                                   std::to_string(i));
        }

        const auto frame = dist::read_frame(fd);
        if (!frame || frame->type != MsgType::kDecideReply) {
          throw std::runtime_error("no DecideReply for request " +
                                   std::to_string(i));
        }
        const dist::DecideReplyMsg reply =
            dist::decode_decide_reply(frame->payload);
        EXPECT_EQ(reply.request_id, request.request_id) << i;
        EXPECT_EQ(reply.slot, request.slot) << i;
        result.decisions.push_back(
            {reply.decision_id, reply.action, reply.propensity});

        dist::FeedbackMsg feedback;
        feedback.decision_id = reply.decision_id;
        feedback.reward = static_cast<double>((i * 7) % 11) / 10.0;
        dist::append_frame(pending_feedback, MsgType::kFeedback,
                           dist::encode_feedback(feedback));
      }
      if (!pending_feedback.empty() &&
          send_all(fds.back(), pending_feedback) < 0) {
        throw std::runtime_error("final feedback send failed");
      }
      // Let the trailing feedback reach the engine before shutting down.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (engine.feedbacks() < static_cast<std::uint64_t>(n) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      EXPECT_EQ(engine.feedbacks(), static_cast<std::uint64_t>(n));
      // Quiesce the poller first so background_polls is final, then take
      // one synchronous poll: every feedback has landed, counters exact.
      poller_stop.store(true);
      if (poller.joinable()) poller.join();
      if (poll) result.final_stats = poll_stats_once(fds[0]);
    } catch (...) {
      poller_stop.store(true);
      if (poller.joinable()) poller.join();
      for (const int fd : fds) ::close(fd);
      stop.store(true);
      server.join();
      throw;
    }
    poller_stop.store(true);
    if (poller.joinable()) poller.join();
    for (const int fd : fds) ::close(fd);
    stop.store(true);
    server.join();
    log.close();
  }
  result.log_bytes = read_bytes(log_path);
  return result;
}

/// FNV-1a of the event-log bytes from run_scenario(·, 96). Pins the full
/// stack — engine seed derivation, per-key streams, policy tie-breaks, and
/// the record encodings. Regenerate (the failure message prints the actual
/// value) only for a deliberate wire/log format change.
constexpr std::uint64_t kGoldenLogHash = 0xcd343417a48c86c6ULL;

TEST(ServeServer, ConnectionCountDoesNotChangeDecisionsOrLog) {
  const int kRequests = 96;
  ScenarioResult one = run_scenario(1, kRequests);
  ScenarioResult four = run_scenario(4, kRequests);

  ASSERT_EQ(one.decisions.size(), static_cast<std::size_t>(kRequests));
  ASSERT_EQ(four.decisions.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    ASSERT_EQ(one.decisions[idx].decision_id, four.decisions[idx].decision_id)
        << i;
    ASSERT_EQ(one.decisions[idx].action, four.decisions[idx].action) << i;
    ASSERT_EQ(one.decisions[idx].propensity, four.decisions[idx].propensity)
        << i;
  }
  EXPECT_EQ(one.log_bytes, four.log_bytes);
  EXPECT_EQ(fnv1a(one.log_bytes), kGoldenLogHash)
      << "actual hash 0x" << std::hex << fnv1a(one.log_bytes);

  EXPECT_EQ(one.stats.connections_accepted, 1u);
  EXPECT_EQ(four.stats.connections_accepted, 4u);
  EXPECT_EQ(one.stats.decide_requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(one.stats.feedback_frames, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(one.stats.protocol_errors, 0u);

  // The log is the canonical D1 F1 D2 F2 ... interleaving.
  TempDir dir;
  const std::string copy = dir.file("copy.ncbl");
  std::ofstream(copy, std::ios::binary) << one.log_bytes;
  const EventLogScan scan = read_event_log(copy);
  ASSERT_EQ(scan.records.size(), static_cast<std::size_t>(2 * kRequests));
  EXPECT_EQ(scan.joined, static_cast<std::uint64_t>(kRequests));
  EXPECT_FALSE(scan.truncated_tail);
  for (int i = 0; i < kRequests; ++i) {
    const auto idx = static_cast<std::size_t>(2 * i);
    EXPECT_EQ(scan.records[idx].type, EventType::kDecision) << i;
    EXPECT_EQ(scan.records[idx + 1].type, EventType::kFeedback) << i;
    EXPECT_EQ(scan.records[idx].decision_id,
              scan.records[idx + 1].decision_id)
        << i;
  }
}

TEST(ServeServer, RejectsBadHandshakeAndUnexpectedFrames) {
  TempDir dir;
  const std::string socket_path = dir.file("serve.sock");
  EngineOptions engine_options;
  engine_options.policy_spec = "eps-greedy:eps=0";
  engine_options.epsilon = 0.0;
  DecisionEngine engine(ring_graph(4), engine_options);

  std::atomic<bool> stop{false};
  ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.should_stop = [&stop] { return stop.load(); };
  ServerStats stats;
  std::thread server([&] { stats = run_server(engine, server_options); });

  {  // Wrong schema word in the Hello: dropped before any ack.
    const int fd = connect_retry(socket_path);
    ASSERT_GE(fd, 0);
    dist::HelloMsg hello;
    hello.schema = dist::kServeWireSchema + 9;
    dist::write_frame(fd, MsgType::kHello, dist::encode_hello(hello));
    EXPECT_FALSE(dist::read_frame(fd).has_value());  // clean EOF, no ack
    ::close(fd);
  }
  {  // Valid handshake, then a sweep frame type the serve reactor never
     // accepts: the connection is dropped, the error counted by name.
    const int fd = handshake_client(socket_path);
    ASSERT_GE(fd, 0);
    dist::write_frame(fd, MsgType::kShutdown, "");
    EXPECT_FALSE(dist::read_frame(fd).has_value());
    ::close(fd);
  }
  {  // A healthy client is undisturbed by the two drops above.
    const int fd = handshake_client(socket_path);
    ASSERT_GE(fd, 0);
    dist::DecideRequestMsg request;
    request.request_id = 1;
    request.user_key = "ok";
    dist::write_frame(fd, MsgType::kDecideRequest,
                      dist::encode_decide_request(request));
    const auto frame = dist::read_frame(fd);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::kDecideReply);
    ::close(fd);
  }

  stop.store(true);
  server.join();
  EXPECT_EQ(stats.protocol_errors, 2u);
  EXPECT_EQ(stats.decide_requests, 1u);
  EXPECT_EQ(stats.connections_accepted, 3u);
}

#ifndef NCB_NO_METRICS
TEST(ServeServer, StatsPollingObservesExactCountersWithoutPerturbing) {
  obs::MetricsRegistry registry;
  const int kRequests = 96;
  ScenarioResult polled =
      run_scenario(2, kRequests, &registry, /*poll=*/true);

  // The golden hash from the unpolled scenario must survive a concurrent
  // StatsRequest hammer on a third connection: telemetry observes serving,
  // it never steers it.
  EXPECT_EQ(fnv1a(polled.log_bytes), kGoldenLogHash)
      << "actual hash 0x" << std::hex << fnv1a(polled.log_bytes);
  EXPECT_GT(polled.background_polls, 0u);

  const dist::StatsReplyMsg& live = polled.final_stats;
  EXPECT_EQ(stat_value(live, "serve.decide.requests"), kRequests);
  EXPECT_EQ(stat_value(live, "serve.feedback.frames"), kRequests);
  EXPECT_EQ(stat_value(live, "serve.engine.decisions"), kRequests);
  EXPECT_EQ(stat_value(live, "serve.engine.feedbacks"), kRequests);
  EXPECT_EQ(stat_value(live, "serve.log.records"), 2 * kRequests);
  EXPECT_EQ(stat_value(live, "serve.protocol.errors"), 0);
  // 2 lockstep clients + the poller connection.
  EXPECT_EQ(stat_value(live, "serve.connections.accepted"), 3);
  // The final poll counts itself before snapshotting.
  EXPECT_GE(stat_value(live, "serve.stats.requests"),
            static_cast<std::int64_t>(polled.background_polls) + 1);
  EXPECT_EQ(stat_value(live, "serve.decide.latency_us.count"), kRequests);
  EXPECT_EQ(stat_value(live, "serve.feedback.latency_us.count"), kRequests);
}

TEST(ServeServer, StatsRequestReportsProtocolAndDuplicateErrors) {
  obs::MetricsRegistry registry;
  TempDir dir;
  const std::string socket_path = dir.file("serve.sock");
  EngineOptions engine_options;
  engine_options.policy_spec = "eps-greedy:eps=0";
  engine_options.epsilon = 0.0;
  engine_options.metrics = &registry;
  DecisionEngine engine(ring_graph(4), engine_options);

  std::atomic<bool> stop{false};
  ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.should_stop = [&stop] { return stop.load(); };
  server_options.metrics = &registry;
  ServerStats stats;
  std::thread server([&] { stats = run_server(engine, server_options); });

  {  // Sweep-only frame type: dropped, counted by name.
    const int fd = handshake_client(socket_path);
    ASSERT_GE(fd, 0);
    dist::write_frame(fd, MsgType::kShutdown, "");
    EXPECT_FALSE(dist::read_frame(fd).has_value());
    ::close(fd);
  }
  {  // A StatsRequest must carry an empty payload.
    const int fd = handshake_client(socket_path);
    ASSERT_GE(fd, 0);
    dist::write_frame(fd, MsgType::kStatsRequest, "boom");
    EXPECT_FALSE(dist::read_frame(fd).has_value());
    ::close(fd);
  }

  const int fd = handshake_client(socket_path);
  ASSERT_GE(fd, 0);
  dist::DecideRequestMsg request;
  request.request_id = 1;
  request.user_key = "dup";
  dist::write_frame(fd, MsgType::kDecideRequest,
                    dist::encode_decide_request(request));
  const auto frame = dist::read_frame(fd);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, MsgType::kDecideReply);
  const dist::DecideReplyMsg reply =
      dist::decode_decide_reply(frame->payload);

  // Same decision acknowledged twice: first lands, second is a duplicate.
  dist::FeedbackMsg feedback;
  feedback.decision_id = reply.decision_id;
  feedback.reward = 0.5;
  dist::write_frame(fd, MsgType::kFeedback, dist::encode_feedback(feedback));
  dist::write_frame(fd, MsgType::kFeedback, dist::encode_feedback(feedback));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.duplicate_feedbacks() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const dist::StatsReplyMsg live = poll_stats_once(fd);
  EXPECT_EQ(stat_value(live, "serve.protocol.errors"), 2);
  EXPECT_EQ(stat_value(live, "serve.engine.duplicate_feedbacks"), 1);
  EXPECT_EQ(stat_value(live, "serve.engine.unknown_feedbacks"), 0);
  EXPECT_EQ(stat_value(live, "serve.engine.feedbacks"), 1);
  EXPECT_EQ(stat_value(live, "serve.decide.requests"), 1);
  EXPECT_EQ(stat_value(live, "serve.connections.accepted"), 3);
  ::close(fd);

  stop.store(true);
  server.join();
  EXPECT_EQ(stats.protocol_errors, 2u);
}
#endif  // NCB_NO_METRICS

}  // namespace
}  // namespace ncb::serve
