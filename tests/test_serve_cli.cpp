// Process-level tests of the ncb_serve CLI (path injected as
// NCB_SERVE_BIN), covering the parts that never need a live socket:
//   - field-named validation of the numeric flags (--flush-bytes,
//     --flush-ms, --backlog, --drain-ms, --metrics-interval-ms) with exit
//     code 2 and the offending flag named on stderr,
//   - --inspect-log's machine-readable join-health JSON block (duplicate
//     feedbacks, unjoined decisions, orphan feedbacks, truncated tail)
//     over logs written in-process with the real EventLog.
// All tests GTEST_SKIP when the binary is not built (the ASan config
// builds tests without examples).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/event_log.hpp"

#ifndef NCB_SERVE_BIN
#define NCB_SERVE_BIN ""
#endif

namespace ncb {
namespace {

namespace fs = std::filesystem;

constexpr const char* kServeBin = NCB_SERVE_BIN;

bool binary_available() { return kServeBin[0] != '\0'; }

#define REQUIRE_BINARY()                                           \
  do {                                                             \
    if (!binary_available())                                       \
      GTEST_SKIP() << "ncb_serve not built in this configuration"; \
  } while (0)

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "ncb_scli_XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ignored;
    fs::remove_all(path, ignored);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// fork/exec of the real binary; stdout/stderr go to the given paths (or
/// /dev/null when empty).
pid_t spawn_serve(const std::vector<std::string>& args,
                  const std::string& stdout_path = "",
                  const std::string& stderr_path = "") {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const auto redirect = [](const std::string& path, int target) {
    const int fd = ::open(path.empty() ? "/dev/null" : path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, target);
      ::close(fd);
    }
  };
  redirect(stdout_path, STDOUT_FILENO);
  redirect(stderr_path, STDERR_FILENO);
  std::vector<std::string> full;
  full.push_back(kServeBin);
  full.insert(full.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(full.size() + 1);
  for (std::string& arg : full) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(kServeBin, argv.data());
  ::_exit(127);
}

int wait_exit(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

int run_serve(const std::vector<std::string>& args,
              const std::string& stdout_path = "",
              const std::string& stderr_path = "") {
  return wait_exit(spawn_serve(args, stdout_path, stderr_path));
}

/// Rejected flag sets: each case must exit 2 and name its flag on stderr.
/// Every command line is otherwise valid (socket present), so only the
/// flag under test can be the cause.
struct RejectCase {
  std::vector<std::string> extra;
  std::string expect_in_stderr;
};

TEST(ServeCliValidation, BadNumericFlagsExitTwoAndNameTheField) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::vector<RejectCase> cases = {
      {{"--flush-bytes", "0"}, "--flush-bytes: must be positive (got 0)"},
      {{"--flush-bytes", "-5"}, "--flush-bytes: must be positive (got -5)"},
      {{"--flush-ms", "0"}, "--flush-ms: must be positive (got 0)"},
      {{"--backlog", "0"}, "--backlog: must be positive (got 0)"},
      {{"--drain-ms", "-1"}, "--drain-ms: must be non-negative (got -1)"},
      {{"--metrics-interval-ms", "-10"},
       "--metrics-interval-ms: must be non-negative (got -10)"},
      {{"--metrics-interval-ms", "100"},
       "--metrics-interval-ms: requires --metrics-out"},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const std::string err = dir.file("err" + std::to_string(i));
    std::vector<std::string> args = {"--socket", dir.file("s.sock"),
                                     "--arms", "8"};
    args.insert(args.end(), cases[i].extra.begin(), cases[i].extra.end());
    EXPECT_EQ(run_serve(args, "", err), 2) << "case " << i;
    EXPECT_NE(read_text(err).find(cases[i].expect_in_stderr),
              std::string::npos)
        << "case " << i << " stderr: " << read_text(err);
  }
}

TEST(ServeCliValidation, AcceptedFlagsServeAndWriteFinalSnapshot) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string socket_path = dir.file("s.sock");
  const std::string metrics_path = dir.file("metrics.json");
  const std::string out = dir.file("out");
  const pid_t pid = spawn_serve(
      {"--socket", socket_path, "--arms", "8", "--flush-bytes", "1024",
       "--flush-ms", "5", "--drain-ms", "0", "--metrics-out", metrics_path,
       "--metrics-interval-ms", "20"},
      out);
  // Accepted values sail past validation: the server comes up, and a
  // SIGTERM later it exits 0 having written the final registry snapshot.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!fs::exists(socket_path) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(fs::exists(socket_path)) << read_text(out);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ::kill(pid, SIGTERM);
  EXPECT_EQ(wait_exit(pid), 0);
  EXPECT_NE(read_text(metrics_path).find("\"schema\": 1"),
            std::string::npos);
  EXPECT_NE(read_text(out).find("served 0 decisions"), std::string::npos);
}

/// Writes a log whose join health is fully known: decisions 1..4, where
/// #1 gets two feedbacks (one duplicate), #2 and #3 are joined, #4 never
/// hears back, and one feedback references a decision never logged.
void write_unhealthy_log(const std::string& path) {
  serve::EventLog log({path, 64 * 1024, 50});
  log.append_decision(1, "a", 0, 0.5);
  log.append_feedback(1, 1.0);
  log.append_feedback(1, 0.25);  // duplicate
  log.append_decision(2, "b", 1, 0.5);
  log.append_feedback(2, 0.0);
  log.append_decision(3, "c", 2, 0.125);
  log.append_feedback(3, 1.0);
  log.append_decision(4, "d", 3, 0.5);  // unjoined
  log.append_feedback(99, 1.0);         // orphan
  log.close();
}

TEST(ServeCliInspect, JsonBlockReportsJoinHealth) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string log_path = dir.file("events.ncbl");
  write_unhealthy_log(log_path);

  const std::string out = dir.file("out");
  ASSERT_EQ(run_serve({"--inspect-log", log_path}, out), 0);
  const std::string text = read_text(out);
  // Prose summary line first (scan-level join: the duplicate feedback
  // still matches a decision), then the JSON block (strict join).
  EXPECT_NE(text.find("records=9 decisions=4 feedbacks=5 joined=4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"records\": 9"), std::string::npos);
  EXPECT_NE(text.find("\"decisions\": 4"), std::string::npos);
  EXPECT_NE(text.find("\"feedbacks\": 5"), std::string::npos);
  EXPECT_NE(text.find("\"joined\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"unjoined_decisions\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"orphan_feedbacks\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"duplicate_feedbacks\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"min_propensity\": 0.125"), std::string::npos);
  EXPECT_NE(text.find("\"truncated_tail\": false"), std::string::npos);
}

TEST(ServeCliInspect, TruncatedTailExitsOneAndFlagsIt) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string log_path = dir.file("events.ncbl");
  write_unhealthy_log(log_path);

  // Chop mid-record: the complete prefix still parses, the tail flips the
  // flag and the exit code.
  const std::string bytes = read_text(log_path);
  ASSERT_GT(bytes.size(), 3u);
  const std::string torn_path = dir.file("torn.ncbl");
  std::ofstream(torn_path, std::ios::binary)
      << bytes.substr(0, bytes.size() - 3);

  const std::string out = dir.file("out");
  const std::string err = dir.file("err");
  EXPECT_EQ(run_serve({"--inspect-log", torn_path}, out, err), 1);
  EXPECT_NE(read_text(out).find("\"truncated_tail\": true"),
            std::string::npos);
  EXPECT_NE(read_text(err).find("truncated tail"), std::string::npos);
}

TEST(ServeCliInspect, MissingLogExitsTwo) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string err = dir.file("err");
  EXPECT_EQ(run_serve({"--inspect-log", dir.file("no-such.ncbl")}, "", err),
            2);
  EXPECT_NE(read_text(err).find("error:"), std::string::npos);
}

}  // namespace
}  // namespace ncb
