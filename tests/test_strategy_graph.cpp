#include "strategy/strategy_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

std::shared_ptr<const Graph> shared_graph(Graph g) {
  return std::make_shared<const Graph>(std::move(g));
}

TEST(StrategyGraph, PaperFig2Construction) {
  // Arms: path 0-1-2-3. Feasible set: the 7 independent sets in order
  // s0={0} s1={1} s2={2} s3={3} s4={0,2} s5={0,3} s6={1,3}.
  // Applying §IV's mutual-containment rule (s_y ⊆ Y_x AND s_x ⊆ Y_y)
  // pair by pair yields exactly these 8 links:
  const FeasibleSet family =
      make_independent_set_family(shared_graph(path_graph(4)));
  const Graph sg = build_strategy_graph(family);
  ASSERT_EQ(sg.num_vertices(), 7u);
  const std::vector<Edge> expected{{0, 1}, {1, 2}, {1, 4}, {2, 3},
                                   {2, 6}, {4, 5}, {4, 6}, {5, 6}};
  EXPECT_EQ(sg.edges(), expected);
}

TEST(StrategyGraph, PaperExampleS2S5Connected) {
  // The paper's worked example: s2={2} (our id 1, 0-indexed {1}) and
  // s5={1,3} (our id 4, 0-indexed {0,2}) are connected.
  const FeasibleSet family =
      make_independent_set_family(shared_graph(path_graph(4)));
  const Graph sg = build_strategy_graph(family);
  EXPECT_TRUE(sg.has_edge(1, 4));
}

TEST(StrategyGraph, EmptyRelationGraphLinksNothing) {
  // Without edges, Y_x = s_x, so distinct strategies can only be linked if
  // each is a subset of the other — impossible for distinct sets.
  const FeasibleSet family = make_subset_family(shared_graph(empty_graph(5)), 2);
  const Graph sg = build_strategy_graph(family);
  EXPECT_EQ(sg.num_edges(), 0u);
}

TEST(StrategyGraph, CompleteRelationGraphLinksEverything) {
  // Complete graph: Y_x = V for all x, so SG is complete.
  const FeasibleSet family =
      make_subset_family(shared_graph(complete_graph(4)), 2);
  const Graph sg = build_strategy_graph(family);
  const std::size_t f = family.size();
  EXPECT_EQ(sg.num_edges(), f * (f - 1) / 2);
}

TEST(StrategyGraph, SymmetricDefinition) {
  Xoshiro256 rng(5);
  const FeasibleSet family =
      make_subset_family(shared_graph(erdos_renyi(8, 0.4, rng)), 2);
  const Graph sg = build_strategy_graph(family);
  // Adjacency must equal the mutual-containment predicate.
  for (StrategyId x = 0; x < static_cast<StrategyId>(family.size()); ++x) {
    for (StrategyId y = x + 1; y < static_cast<StrategyId>(family.size()); ++y) {
      const bool expected =
          family.strategy_bits(y).is_subset_of(family.neighborhood_bits(x)) &&
          family.strategy_bits(x).is_subset_of(family.neighborhood_bits(y));
      EXPECT_EQ(sg.has_edge(x, y), expected) << "pair " << x << "," << y;
    }
  }
}

TEST(ObservableStrategies, AlwaysIncludesSelf) {
  Xoshiro256 rng(9);
  const FeasibleSet family =
      make_subset_family(shared_graph(erdos_renyi(7, 0.3, rng)), 2);
  for (StrategyId x = 0; x < static_cast<StrategyId>(family.size()); ++x) {
    const auto obs = observable_strategies(family, x);
    EXPECT_NE(std::find(obs.begin(), obs.end(), x), obs.end());
  }
}

TEST(ObservableStrategies, SupersetOfSgClosedNeighborhood) {
  Xoshiro256 rng(13);
  const FeasibleSet family =
      make_subset_family(shared_graph(erdos_renyi(7, 0.5, rng)), 2);
  const Graph sg = build_strategy_graph(family);
  for (StrategyId x = 0; x < static_cast<StrategyId>(family.size()); ++x) {
    const auto observable = observable_strategies(family, x);
    for (const ArmId y : sg.closed_neighborhood(x)) {
      EXPECT_NE(std::find(observable.begin(), observable.end(),
                          static_cast<StrategyId>(y)),
                observable.end())
          << "SG neighbor " << y << " of " << x << " not observable";
    }
  }
}

TEST(ObservableStrategies, OneDirectionalContainmentOnly) {
  // Star graph with strategies {0} (hub), {1}, {2}: the hub observes
  // everything, a leaf observes only itself and the hub.
  const FeasibleSet family =
      make_explicit_family(shared_graph(star_graph(4)), {{0}, {1}, {2}});
  const auto from_hub = observable_strategies(family, 0);
  EXPECT_EQ(from_hub.size(), 3u);
  const auto from_leaf = observable_strategies(family, 1);
  EXPECT_EQ(from_leaf, (std::vector<StrategyId>{0, 1}));
  // SG keeps 0-1 (mutual containment) but must not keep 1-2.
  const Graph sg = build_strategy_graph(family);
  EXPECT_TRUE(sg.has_edge(0, 1));
  EXPECT_FALSE(sg.has_edge(1, 2));
}

TEST(StrategyGraph, SingletonFamiliesMirrorRelationGraph) {
  // With singleton strategies on a triangle-free graph, SG links {i},{j}
  // iff i and j are adjacent in G (mutual containment via closed nbhd).
  const Graph g = path_graph(5);
  std::vector<ArmSet> singletons;
  for (ArmId v = 0; v < 5; ++v) singletons.push_back({v});
  const FeasibleSet family = make_explicit_family(shared_graph(g), singletons);
  const Graph sg = build_strategy_graph(family);
  EXPECT_EQ(sg.edges(), path_graph(5).edges());
}

}  // namespace
}  // namespace ncb
