#include "util/svg_plot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ncb {
namespace {

TEST(SvgPlot, EmptyInputProducesValidDocument) {
  const auto svg = render_svg({});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("(no data)"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgPlot, SingleSeriesHasPolyline) {
  const std::vector<PlotSeries> series{{"regret", {0.0, 1.0, 2.0, 3.0}}};
  SvgOptions opts;
  opts.title = "test figure";
  const auto svg = render_svg(series, opts);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("test figure"), std::string::npos);
  EXPECT_NE(svg.find("regret"), std::string::npos);
}

TEST(SvgPlot, MultipleSeriesGetDistinctColors) {
  const std::vector<PlotSeries> series{{"a", {0, 1}}, {"b", {1, 0}}};
  const auto svg = render_svg(series);
  EXPECT_NE(svg.find("#1f77b4"), std::string::npos);
  EXPECT_NE(svg.find("#d62728"), std::string::npos);
}

TEST(SvgPlot, TitleEscaped) {
  SvgOptions opts;
  opts.title = "a < b & c";
  const auto svg = render_svg({{"s", {1.0, 2.0}}}, opts);
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_EQ(svg.find("a < b & c"), std::string::npos);
}

TEST(SvgPlot, NonFiniteValuesSkipped) {
  const std::vector<PlotSeries> series{
      {"s", {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0}}};
  const auto svg = render_svg(series);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

TEST(SvgPlot, ConstantSeriesNoDivisionByZero) {
  const auto svg = render_svg({{"flat", {2.0, 2.0, 2.0}}});
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(SvgPlot, LongSeriesDownsampled) {
  std::vector<double> values(100000);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<double>(i);
  SvgOptions opts;
  opts.max_points = 100;
  const auto svg = render_svg({{"long", values}}, opts);
  // Rough size check: a downsampled polyline stays small.
  EXPECT_LT(svg.size(), 20000u);
}

TEST(SvgPlot, WriteToFileRoundTrip) {
  const std::string path = "/tmp/ncb_test_plot.svg";
  ASSERT_TRUE(write_svg(path, {{"s", {1.0, 2.0, 3.0}}}));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SvgPlot, WriteToBadPathFails) {
  EXPECT_FALSE(write_svg("/nonexistent-dir/x.svg", {{"s", {1.0}}}));
}

TEST(SvgPlot, YZeroIncludesOrigin) {
  SvgOptions opts;
  opts.y_zero = true;
  const auto svg = render_svg({{"s", {5.0, 6.0}}}, opts);
  // The lowest tick label must be 0.
  EXPECT_NE(svg.find(">0</text>"), std::string::npos);
}

}  // namespace
}  // namespace ncb
