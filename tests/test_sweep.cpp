// Sweep engine (src/exp/): spec parsing/expansion, checkpoint grids, shard
// planning, Welford aggregation pinned against a two-pass reference, JSON
// emit/parse round-trips, and the headline determinism contract — the same
// SweepSpec must produce byte-identical JSON for any thread count and any
// shard size.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "core/policy_factory.hpp"
#include "exp/emitters.hpp"
#include "exp/shard_scheduler.hpp"
#include "exp/sweep_runner.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace ncb::exp {
namespace {

// ---------------------------------------------------------------- grids ---

TEST(CheckpointGrid, DenseWhenCountIsZeroOrLarge) {
  const auto dense = checkpoint_grid(50, 0);
  ASSERT_EQ(dense.size(), 50u);
  EXPECT_EQ(dense.front(), 1);
  EXPECT_EQ(dense.back(), 50);
  EXPECT_EQ(checkpoint_grid(20, 100).size(), 20u);
}

TEST(CheckpointGrid, LogSpacedCoversEndpointsStrictlyIncreasing) {
  const auto grid = checkpoint_grid(10000, 30);
  ASSERT_GE(grid.size(), 2u);
  EXPECT_LE(grid.size(), 31u);
  EXPECT_EQ(grid.front(), 1);
  EXPECT_EQ(grid.back(), 10000);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LT(grid[i - 1], grid[i]);
  }
}

TEST(CheckpointGrid, SingleCheckpointIsHorizon) {
  EXPECT_EQ(checkpoint_grid(777, 1), std::vector<TimeSlot>{777});
}

TEST(CheckpointGrid, ThrowsOnNonPositiveHorizon) {
  EXPECT_THROW((void)checkpoint_grid(0, 10), std::invalid_argument);
}

// ----------------------------------------------------------- spec parse ---

TEST(SweepSpecParse, ParsesEveryKey) {
  std::istringstream in(
      "# comment\n"
      "name = demo\n"
      "scenario = cso\n"
      "policies = dfl-cso, cucb\n"
      "graphs = er, cliques\n"
      "arms = 12, 24\n"
      "p = 0.3, 0.6\n"
      "family-param = 4\n"
      "horizons = 100, 200\n"
      "replications = 7\n"
      "seed = 99\n"
      "checkpoints = 11\n"
      "strategy-size = 2\n"
      "exact-size = true\n"
      "shard-size = 3\n");
  const SweepSpec spec = SweepSpec::parse(in);
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.scenario, Scenario::kCso);
  EXPECT_EQ(spec.policies, (std::vector<std::string>{"dfl-cso", "cucb"}));
  ASSERT_EQ(spec.graphs.size(), 2u);
  EXPECT_EQ(spec.graphs[1], GraphFamily::kDisjointCliques);
  EXPECT_EQ(spec.arms, (std::vector<std::size_t>{12, 24}));
  EXPECT_EQ(spec.edge_probabilities, (std::vector<double>{0.3, 0.6}));
  EXPECT_EQ(spec.horizons, (std::vector<TimeSlot>{100, 200}));
  EXPECT_EQ(spec.replications, 7u);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.checkpoints, 11u);
  EXPECT_EQ(spec.strategy_size, 2u);
  EXPECT_TRUE(spec.exact_size_strategies);
  EXPECT_EQ(spec.shard_size, 3u);
}

TEST(SweepSpecParse, RejectsMalformedInput) {
  const auto parse_text = [](const char* text) {
    std::istringstream in(text);
    return SweepSpec::parse(in);
  };
  EXPECT_THROW((void)parse_text("bogus-key = 1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_text("scenario = xxx\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_text("graphs = heptagon\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_text("arms = twelve\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_text("p = 1.5\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_text("horizons = 0\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_text("replications =\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_text("no equals sign\n"), std::invalid_argument);
}

TEST(SweepSpecParse, ErrorsNameTheLine) {
  std::istringstream in("name = x\n\nscenario = nope\n");
  try {
    (void)SweepSpec::parse(in);
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

// ------------------------------------------------------------ expansion ---

TEST(SweepSpecExpand, CrossProductOrderPoliciesInnermost) {
  SweepSpec spec;
  spec.policies = {"moss", "dfl-sso"};
  spec.arms = {10, 20};
  spec.horizons = {100};
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].key, "sso:moss@er,K=10,p=0.3,n=100");
  EXPECT_EQ(jobs[1].key, "sso:dfl-sso@er,K=10,p=0.3,n=100");
  EXPECT_EQ(jobs[2].key, "sso:moss@er,K=20,p=0.3,n=100");
  EXPECT_EQ(jobs[3].key, "sso:dfl-sso@er,K=20,p=0.3,n=100");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].config.name, jobs[i].key);
  }
}

TEST(SweepSpecExpand, CollapsesAxesTheFamilyIgnores) {
  SweepSpec spec;
  spec.policies = {"ucb1"};
  spec.graphs = {GraphFamily::kErdosRenyi, GraphFamily::kComplete};
  spec.edge_probabilities = {0.1, 0.2};
  spec.arms = {8};
  spec.horizons = {50};
  const auto jobs = spec.expand();
  // ER consumes the p axis (2 jobs); complete collapses it (1 job).
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[2].key, "sso:ucb1@complete,K=8,n=50");
}

TEST(SweepSpecExpand, KeysAreUnique) {
  SweepSpec spec;
  spec.policies = {"ucb1", "moss"};
  spec.graphs = {GraphFamily::kErdosRenyi, GraphFamily::kWattsStrogatz};
  spec.edge_probabilities = {0.2, 0.4};
  spec.family_params = {2, 3};
  spec.arms = {16, 32};
  spec.horizons = {100, 200};
  const auto jobs = spec.expand();
  std::set<std::string> keys;
  for (const auto& job : jobs) {
    EXPECT_TRUE(keys.insert(job.key).second) << "duplicate " << job.key;
  }
}

TEST(SweepSpecExpand, ThrowsWithoutPolicies) {
  SweepSpec spec;
  EXPECT_THROW((void)spec.expand(), std::invalid_argument);
}

TEST(ScenarioAndFamilyTokens, RoundTrip) {
  for (const Scenario s : {Scenario::kSso, Scenario::kCso, Scenario::kSsr,
                           Scenario::kCsr}) {
    EXPECT_EQ(parse_scenario(scenario_token(s)), s);
  }
  for (const GraphFamily f :
       {GraphFamily::kErdosRenyi, GraphFamily::kComplete, GraphFamily::kEmpty,
        GraphFamily::kStar, GraphFamily::kCycle, GraphFamily::kDisjointCliques,
        GraphFamily::kBarabasiAlbert, GraphFamily::kWattsStrogatz}) {
    EXPECT_EQ(parse_family(family_token(f)), f);
  }
  EXPECT_THROW((void)parse_scenario("SSO"), std::invalid_argument);
  EXPECT_THROW((void)parse_family("erdos"), std::invalid_argument);
}

// ----------------------------------------------------------- shard plan ---

TEST(ShardPlanning, HorizonAwareSizing) {
  // Long horizon → one replication per shard.
  EXPECT_EQ(plan_shards(20, 16384).shard_size, 1u);
  EXPECT_EQ(plan_shards(20, 16384).num_shards(), 20u);
  // Short horizon → chunky shards, capped at the replication count.
  EXPECT_EQ(plan_shards(20, 100).shard_size, 20u);
  EXPECT_EQ(plan_shards(20, 100).num_shards(), 1u);
  // Mid horizon: 16384 / 4000 = 4 replications per shard.
  EXPECT_EQ(plan_shards(20, 4000).shard_size, 4u);
  EXPECT_EQ(plan_shards(20, 4000).num_shards(), 5u);
  // Override wins.
  EXPECT_EQ(plan_shards(20, 100, 3).shard_size, 3u);
  EXPECT_THROW((void)plan_shards(4, 0), std::invalid_argument);
}

TEST(ShardPlanning, ShardRangesPartitionReplications) {
  const ShardPlan plan = plan_shards(11, 100, 4);
  ASSERT_EQ(plan.num_shards(), 3u);
  std::size_t next = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    EXPECT_EQ(plan.shard_begin(s), next);
    EXPECT_GT(plan.shard_end(s), plan.shard_begin(s));
    next = plan.shard_end(s);
  }
  EXPECT_EQ(next, 11u);
}

// ------------------------------------------- Welford vs two-pass pinned ---

/// Brute-force two-pass mean and unbiased variance.
std::pair<double, double> two_pass(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  const double var =
      xs.size() > 1 ? ss / static_cast<double>(xs.size() - 1) : 0.0;
  return {mean, var};
}

TEST(WelfordAggregation, RunningStatMergeMatchesTwoPassReference) {
  Xoshiro256 rng(404);
  std::vector<double> xs(257);
  for (auto& x : xs) x = rng.uniform(-5.0, 100.0);
  const auto [ref_mean, ref_var] = two_pass(xs);

  // Sequential adds.
  RunningStat seq;
  for (const double x : xs) seq.add(x);
  EXPECT_NEAR(seq.mean(), ref_mean, 1e-10 * std::abs(ref_mean));
  EXPECT_NEAR(seq.variance(), ref_var, 1e-9 * ref_var);

  // Chunked merge (the shard→job reduction shape), several chunk sizes.
  for (const std::size_t chunk : {1u, 3u, 64u, 300u}) {
    RunningStat merged;
    for (std::size_t at = 0; at < xs.size(); at += chunk) {
      RunningStat part;
      for (std::size_t i = at; i < std::min(at + chunk, xs.size()); ++i) {
        part.add(xs[i]);
      }
      merged.merge(part);
    }
    EXPECT_EQ(merged.count(), xs.size());
    EXPECT_NEAR(merged.mean(), ref_mean, 1e-10 * std::abs(ref_mean));
    EXPECT_NEAR(merged.variance(), ref_var, 1e-9 * ref_var);
  }
}

TEST(WelfordAggregation, JobAggregateMatchesTwoPassPerCheckpoint) {
  const std::vector<TimeSlot> grid{1, 5, 9};
  Xoshiro256 rng(77);
  const std::size_t reps = 33;
  std::vector<RepSample> samples(reps);
  for (auto& sample : samples) {
    for (std::size_t c = 0; c < grid.size(); ++c) {
      sample.per_slot.push_back(rng.uniform());
      sample.cumulative.push_back(rng.uniform(0.0, 50.0));
    }
    sample.final_cumulative = sample.cumulative.back();
  }
  JobAggregate agg(grid);
  for (const auto& sample : samples) agg.add_rep(sample);

  ASSERT_EQ(agg.replications(), reps);
  for (std::size_t c = 0; c < grid.size(); ++c) {
    std::vector<double> column;
    for (const auto& sample : samples) column.push_back(sample.per_slot[c]);
    const auto [ref_mean, ref_var] = two_pass(column);
    EXPECT_NEAR(agg.expected().at(c).mean(), ref_mean, 1e-12);
    EXPECT_NEAR(agg.expected().at(c).variance(), ref_var, 1e-12);
  }
}

TEST(WelfordAggregation, RejectsMismatchedSample) {
  JobAggregate agg(std::vector<TimeSlot>{1, 2});
  RepSample bad;
  bad.per_slot = {1.0};
  bad.cumulative = {1.0};
  EXPECT_THROW(agg.add_rep(bad), std::invalid_argument);
}

// --------------------------------------------------- sharded driver ---

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.scenario = Scenario::kSso;
  spec.policies = {"moss", "dfl-sso"};
  spec.arms = {16};
  spec.edge_probabilities = {0.4};
  spec.horizons = {120};
  spec.replications = 5;
  spec.seed = 99;
  spec.checkpoints = 10;
  return spec;
}

/// Renders the whole sweep output for one (threads, shard size) choice.
std::string render_sweep(const SweepSpec& spec, std::size_t threads,
                         std::size_t shard_size) {
  ThreadPool pool(threads ? threads : 1);
  SweepRunOptions options;
  options.pool = threads ? &pool : nullptr;
  options.shard_size = shard_size;
  const SweepResult result = run_sweep(spec, options);
  std::vector<std::string> lines;
  for (const JobOutcome& outcome : result.outcomes) {
    lines.push_back(
        render_job_json(JobRecord::from(outcome.job, outcome.aggregate)));
  }
  return render_sweep_json(spec, lines);
}

TEST(SweepDeterminism, ByteIdenticalAcrossThreadsAndShardSizes) {
  const SweepSpec spec = tiny_spec();
  const std::string reference = render_sweep(spec, 1, 1);
  EXPECT_EQ(render_sweep(spec, 2, 1), reference);
  EXPECT_EQ(render_sweep(spec, 8, 1), reference);
  EXPECT_EQ(render_sweep(spec, 1, 3), reference);
  EXPECT_EQ(render_sweep(spec, 2, 3), reference);
  EXPECT_EQ(render_sweep(spec, 8, 3), reference);
  EXPECT_EQ(render_sweep(spec, 0, 2), reference);  // no pool at all
}

TEST(SweepRunner, MaxJobsAndSkipKeys) {
  const SweepSpec spec = tiny_spec();
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 2u);

  SweepRunOptions options;
  options.max_jobs = 1;
  const SweepResult first = run_sweep(spec, options);
  EXPECT_EQ(first.outcomes.size(), 1u);
  EXPECT_EQ(first.pending, 1u);
  EXPECT_EQ(first.outcomes[0].job.key, jobs[0].key);

  const SweepResult rest =
      run_sweep(spec, SweepRunOptions{}, {jobs[0].key});
  EXPECT_EQ(rest.outcomes.size(), 1u);
  EXPECT_EQ(rest.skipped, 1u);
  EXPECT_EQ(rest.outcomes[0].job.key, jobs[1].key);
}

TEST(SweepRunner, CombinatorialScenarioRuns) {
  SweepSpec spec;
  spec.scenario = Scenario::kCso;
  spec.policies = {"dfl-cso"};
  spec.arms = {6};
  spec.edge_probabilities = {0.4};
  spec.horizons = {60};
  spec.replications = 2;
  spec.strategy_size = 2;
  spec.checkpoints = 5;
  const SweepResult result = run_sweep(spec, SweepRunOptions{});
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].aggregate.replications(), 2u);
  EXPECT_GT(result.outcomes[0].aggregate.optimal_per_slot(), 0.0);
  // Combinatorial keys are self-describing: scenario prefix + M suffix.
  EXPECT_EQ(result.outcomes[0].job.key, "cso:dfl-cso@er,K=6,p=0.4,n=60,M=2");
}

TEST(ShardedReplication, PoolPresenceDoesNotChangeBits) {
  SweepJob job = tiny_spec().expand()[1];  // dfl-sso
  const BanditInstance instance = build_instance(job.config);
  ReplicationOptions options;
  options.replications = job.config.replications;
  options.master_seed = job.config.seed;
  options.runner.horizon = job.config.horizon;
  const auto make = [&](std::uint64_t seed) {
    return make_single_play_policy(job.policy, job.config.horizon, seed);
  };
  const ReplicatedResult sequential =
      run_sharded_single(make, instance, Scenario::kSso, options);
  ThreadPool pool(3);
  options.pool = &pool;
  const ReplicatedResult pooled =
      run_sharded_single(make, instance, Scenario::kSso, options);
  ASSERT_EQ(sequential.replications, pooled.replications);
  const auto a = sequential.cumulative_regret.means();
  const auto b = pooled.cumulative_regret.means();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "slot " << i;  // bitwise, not NEAR
  }
  EXPECT_EQ(sequential.final_cumulative.mean(), pooled.final_cumulative.mean());
}

TEST(ShardedReplication, RunSingleExperimentPoolInvariant) {
  ExperimentConfig config;
  config.num_arms = 12;
  config.horizon = 150;
  config.replications = 6;
  const auto sequential =
      run_single_experiment(config, "dfl-sso", Scenario::kSso);
  ThreadPool pool(4);
  const auto pooled =
      run_single_experiment(config, "dfl-sso", Scenario::kSso, &pool);
  EXPECT_EQ(sequential.final_cumulative.mean(), pooled.final_cumulative.mean());
  EXPECT_EQ(sequential.cumulative_regret.means(),
            pooled.cumulative_regret.means());
}

// ------------------------------------------------------------- emitters ---

TEST(JsonNumber, ShortestRoundTrip) {
  EXPECT_EQ(json_number(0.3), "0.3");
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(-2.5), "-2.5");
  for (const double v : {0.1, 1.0 / 3.0, 1e-17, 123456.789, -0.0625}) {
    EXPECT_EQ(std::stod(json_number(v)), v);
  }
}

TEST(JobRecordJson, RoundTripsThroughParse) {
  const SweepSpec spec = tiny_spec();
  const SweepResult result = run_sweep(spec, SweepRunOptions{});
  ASSERT_EQ(result.outcomes.size(), 2u);
  for (const JobOutcome& outcome : result.outcomes) {
    const JobRecord record = JobRecord::from(outcome.job, outcome.aggregate);
    const std::string line = render_job_json(record);
    const JobRecord parsed = parse_job_json(line);
    EXPECT_EQ(parsed.key, record.key);
    EXPECT_EQ(parsed.policy, record.policy);
    EXPECT_EQ(parsed.scenario, record.scenario);
    EXPECT_EQ(parsed.checkpoints, record.checkpoints);
    EXPECT_EQ(parsed.expected_mean, record.expected_mean);
    EXPECT_EQ(parsed.cumulative_sd, record.cumulative_sd);
    EXPECT_EQ(parsed.final_mean, record.final_mean);
    // Re-rendering the parsed record reproduces the exact bytes.
    EXPECT_EQ(render_job_json(parsed), line);
  }
}

TEST(JobRecordJson, PreservesSeedsAbove2Pow53) {
  // Integer fields must not round-trip through double: 2^53 + 1 is the
  // first integer a double cannot hold.
  SweepSpec spec = tiny_spec();
  spec.seed = 9007199254740993ull;
  spec.policies = {"ucb1"};
  spec.horizons = {30};
  spec.replications = 2;
  const SweepResult result = run_sweep(spec, SweepRunOptions{});
  ASSERT_EQ(result.outcomes.size(), 1u);
  const JobRecord record = JobRecord::from(result.outcomes[0].job,
                                           result.outcomes[0].aggregate);
  const JobRecord parsed = parse_job_json(render_job_json(record));
  EXPECT_EQ(parsed.seed, 9007199254740993ull);
  EXPECT_EQ(render_job_json(parsed), render_job_json(record));
}

TEST(JobRecordJson, ParseRejectsGarbage) {
  EXPECT_THROW((void)parse_job_json("{}"), std::invalid_argument);
  EXPECT_THROW((void)parse_job_json("not json"), std::invalid_argument);
}

TEST(SweepEmitters, LoadJobLinesScansAndTolleratesTruncation) {
  const SweepSpec spec = tiny_spec();
  const SweepResult result = run_sweep(spec, SweepRunOptions{});
  std::vector<std::string> lines;
  for (const JobOutcome& outcome : result.outcomes) {
    lines.push_back(
        render_job_json(JobRecord::from(outcome.job, outcome.aggregate)));
  }
  const std::string path =
      testing::TempDir() + "/ncb_sweep_test_output.json";
  write_file(path, render_sweep_json(spec, lines));

  const auto loaded = load_job_lines(path);
  ASSERT_EQ(loaded.size(), 2u);
  for (const std::string& line : lines) {
    const JobRecord record = parse_job_json(line);
    ASSERT_TRUE(loaded.count(record.key));
    EXPECT_EQ(loaded.at(record.key), line);
  }

  // A mid-line truncation (crash during write) must drop only that record.
  const std::string full = render_sweep_json(spec, lines);
  const std::size_t cut = full.rfind("\"final_mean\"");
  write_file(path, full.substr(0, cut));
  const auto partial = load_job_lines(path);
  EXPECT_EQ(partial.size(), 1u);

  EXPECT_TRUE(load_job_lines(path + ".does-not-exist").empty());
}

// ------------------------------------------- instance cache + interrupt ---

TEST(InstanceCache, ReusesMatchingBuildsAcrossPolicyAxis) {
  const SweepSpec spec = tiny_spec();
  const auto jobs = spec.expand();  // two policies over one instance
  ASSERT_EQ(jobs.size(), 2u);
  InstanceCache cache;
  // Hold shared_ptr copies: get() returns a reference into the cache slot.
  const auto first = cache.get(jobs[0].config, false).instance;
  const auto second = cache.get(jobs[1].config, false).instance;
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Horizon is not an instance coordinate — still a hit.
  ExperimentConfig horizon_only = jobs[0].config;
  horizon_only.horizon = 999;
  EXPECT_EQ(cache.get(horizon_only, false).instance.get(), first.get());

  // Any instance coordinate change rebuilds.
  ExperimentConfig changed = jobs[0].config;
  changed.edge_probability = 0.25;
  const auto third = cache.get(changed, false).instance;
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(InstanceCache, CombinatorialEntryCarriesFamilyAndKeysOnIt) {
  SweepSpec spec = tiny_spec();
  spec.scenario = Scenario::kCso;
  spec.strategy_size = 2;
  const auto jobs = spec.expand();
  InstanceCache cache;
  const auto entry = cache.get(jobs[0].config, true);
  ASSERT_NE(entry.family, nullptr);
  ExperimentConfig bigger = jobs[0].config;
  bigger.strategy_size = 3;
  const auto rebuilt = cache.get(bigger, true);
  EXPECT_NE(rebuilt.instance.get(), entry.instance.get());
}

TEST(InstanceCache, SharedCacheDoesNotChangeBytes) {
  const SweepSpec spec = tiny_spec();
  const SweepResult shared = run_sweep(spec, SweepRunOptions{});
  const auto jobs = spec.expand();
  ASSERT_EQ(shared.outcomes.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SweepRunOptions solo;  // no shared cache → fresh build per job
    const JobOutcome outcome = run_sweep_job(jobs[i], spec.checkpoints, solo);
    EXPECT_EQ(render_job_json(JobRecord::from(outcome.job, outcome.aggregate)),
              render_job_json(JobRecord::from(shared.outcomes[i].job,
                                              shared.outcomes[i].aggregate)));
  }
}

TEST(SweepRunner, ShouldStopBetweenJobsReportsPending) {
  const SweepSpec spec = tiny_spec();  // two jobs
  std::size_t completed = 0;
  SweepRunOptions options;
  options.on_job = [&](const JobOutcome&) { ++completed; };
  options.should_stop = [&] { return completed >= 1; };
  const SweepResult result = run_sweep(spec, options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.pending, 1u);
}

TEST(SweepRunner, ShouldStopMidJobDropsTheIncompleteAggregate) {
  SweepSpec spec = tiny_spec();
  spec.policies = {"moss"};  // one job, five reps
  SweepRunOptions options;
  options.shard_size = 1;  // five single-rep shards, run inline
  int calls = 0;
  // Call sequence without a pool: pre-job check, then one check per shard.
  // Allowing two calls lets exactly one shard run before cancellation.
  options.should_stop = [&] { return ++calls > 2; };
  const SweepResult result = run_sweep(spec, options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_TRUE(result.outcomes.empty());  // incomplete job is dropped
  EXPECT_EQ(result.pending, 1u);
}

TEST(SweepEmitters, CsvHasRowPerCheckpoint) {
  const SweepSpec spec = tiny_spec();
  const SweepResult result = run_sweep(spec, SweepRunOptions{});
  std::vector<JobRecord> records;
  std::size_t expected_rows = 0;
  for (const JobOutcome& outcome : result.outcomes) {
    records.push_back(JobRecord::from(outcome.job, outcome.aggregate));
    expected_rows += records.back().checkpoints.size();
  }
  const std::string csv = render_sweep_csv(records);
  std::size_t newlines = 0;
  for (const char c : csv) newlines += c == '\n';
  EXPECT_EQ(newlines, expected_rows + 1);  // + header
  EXPECT_EQ(csv.compare(0, 4, "key,"), 0);
}

}  // namespace
}  // namespace ncb::exp
