// Process-level tests of the ncb_sweep CLI and the distributed dispatch
// layer, driving the real binary (path injected as NCB_SWEEP_BIN):
//   - --dry-run lists without running,
//   - --workers {1,2,4} output is byte-identical to the in-process run,
//   - a worker SIGKILLed mid-sweep is requeued and the bytes still match,
//   - SIGINT leaves a record-boundary-valid file that --resume completes to
//     the exact bytes of an uninterrupted run,
//   - --resume bridges the in-process and distributed paths.
// All tests GTEST_SKIP when the binary is not built (ASan config builds
// tests without examples).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef NCB_SWEEP_BIN
#define NCB_SWEEP_BIN ""
#endif
#ifndef NCB_SPECS_DIR
#define NCB_SPECS_DIR ""
#endif

namespace {

namespace fs = std::filesystem;

constexpr const char* kSweepBin = NCB_SWEEP_BIN;

bool binary_available() { return kSweepBin[0] != '\0'; }

#define REQUIRE_BINARY()                                           \
  do {                                                             \
    if (!binary_available())                                       \
      GTEST_SKIP() << "ncb_sweep not built in this configuration"; \
  } while (0)

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "ncb_cli_XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ignored;
    fs::remove_all(path, ignored);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

void write_text(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out << content;
}

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

using EnvVars = std::vector<std::pair<std::string, std::string>>;

/// fork/exec of the real binary; stdout goes to `stdout_path` (or
/// /dev/null when empty — the progress stream is usually not under test),
/// stderr to `stderr_path` (or stays visible for debugging when empty).
pid_t spawn_sweep(const std::vector<std::string>& args, const EnvVars& env,
                  const std::string& stdout_path = "",
                  const std::string& stderr_path = "") {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  for (const auto& [key, value] : env) {
    ::setenv(key.c_str(), value.c_str(), 1);
  }
  const int out = ::open(stdout_path.empty() ? "/dev/null"
                                             : stdout_path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out >= 0) {
    ::dup2(out, STDOUT_FILENO);
    ::close(out);
  }
  if (!stderr_path.empty()) {
    const int err =
        ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (err >= 0) {
      ::dup2(err, STDERR_FILENO);
      ::close(err);
    }
  }
  std::vector<std::string> full;
  full.push_back(kSweepBin);
  full.insert(full.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(full.size() + 1);
  for (std::string& arg : full) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(kSweepBin, argv.data());
  ::_exit(127);
}

int wait_exit(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

int run_sweep(const std::vector<std::string>& args, const EnvVars& env = {},
              const std::string& stdout_path = "",
              const std::string& stderr_path = "") {
  return wait_exit(spawn_sweep(args, env, stdout_path, stderr_path));
}

/// The fast 4-job grid (2 policies × 2 horizons) used by most tests.
std::string tiny_spec() {
  return "name = cli\n"
         "scenario = sso\n"
         "policies = moss, dfl-sso\n"
         "graphs = er\n"
         "arms = 30\n"
         "p = 0.3\n"
         "horizons = 200, 300\n"
         "replications = 4\n"
         "checkpoints = 8\n"
         "seed = 11\n";
}

/// A slower 6-job grid so a SIGINT lands mid-sweep with high probability.
std::string slow_spec() {
  return "name = cli-slow\n"
         "scenario = sso\n"
         "policies = moss, dfl-sso, ucb1\n"
         "graphs = er\n"
         "arms = 40\n"
         "p = 0.3\n"
         "horizons = 2000, 3000\n"
         "replications = 6\n"
         "checkpoints = 10\n"
         "seed = 13\n";
}

TEST(SweepCli, DryRunListsWithoutRunning) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string spec = dir.file("tiny.spec");
  write_text(spec, tiny_spec());
  const std::string out = dir.file("out.json");
  EXPECT_EQ(run_sweep({"--spec", spec, "--out", out, "--dry-run"}), 0);
  EXPECT_FALSE(fs::exists(out)) << "--dry-run must not write output";
}

TEST(SweepCli, RejectsNegativeWorkerCount) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string spec = dir.file("tiny.spec");
  write_text(spec, tiny_spec());
  EXPECT_EQ(run_sweep({"--spec", spec, "--workers", "-2"}), 2);
}

TEST(SweepCli, DistributedFlagRejectionsAreFieldNamed) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string spec = dir.file("tiny.spec");
  write_text(spec, tiny_spec());

  struct Case {
    std::vector<std::string> extra;
    std::string expect;  ///< must appear in stderr
  };
  const std::vector<Case> cases = {
      {{"--threads", "-1"}, "--threads"},
      {{"--workers", "-2"}, "--workers"},
      {{"--listen", "no-colon"}, "--listen"},
      {{"--listen", ":9000"}, "--listen"},
      {{"--listen", "127.0.0.1:99999"}, "--listen"},
      {{"--listen", "127.0.0.1:0", "--workers", "2"}, "mutually exclusive"},
      {{"--port-file", dir.file("p.port")}, "--port-file requires --listen"},
  };
  for (const Case& c : cases) {
    std::vector<std::string> args = {"--spec", spec, "--out",
                                     dir.file("out.json")};
    args.insert(args.end(), c.extra.begin(), c.extra.end());
    const std::string err = dir.file("stderr.txt");
    EXPECT_EQ(run_sweep(args, {}, "", err), 2) << c.expect;
    EXPECT_NE(read_text(err).find(c.expect), std::string::npos)
        << "stderr for " << c.expect << " was: " << read_text(err);
  }
}

TEST(SweepCli, WorkersProduceByteIdenticalOutput) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string spec = dir.file("tiny.spec");
  write_text(spec, tiny_spec());
  const std::string reference = dir.file("ref.json");
  ASSERT_EQ(run_sweep({"--spec", spec, "--out", reference}), 0);
  const std::string expected = read_text(reference);
  ASSERT_FALSE(expected.empty());
  for (const char* workers : {"1", "2", "4"}) {
    const std::string out = dir.file(std::string("w") + workers + ".json");
    ASSERT_EQ(run_sweep({"--spec", spec, "--out", out, "--workers", workers}),
              0)
        << "--workers " << workers;
    EXPECT_EQ(read_text(out), expected) << "--workers " << workers;
  }
}

TEST(SweepCli, SigkilledWorkerIsRequeuedWithIdenticalBytes) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string spec = dir.file("tiny.spec");
  write_text(spec, tiny_spec());
  const std::string reference = dir.file("ref.json");
  ASSERT_EQ(run_sweep({"--spec", spec, "--out", reference}), 0);
  // Crash injection (see dist/worker.hpp): the worker first assigned this
  // job SIGKILLs itself; the requeued attempt must reproduce the bytes.
  const std::string out = dir.file("killed.json");
  const std::string log = dir.file("killed.log");
  ASSERT_EQ(run_sweep({"--spec", spec, "--out", out, "--workers", "2"},
                      {{"NCB_DIST_KILL_KEY", "sso:dfl-sso@er,K=30,p=0.3,n=200"}},
                      log),
            0);
  // Guard against key-format drift silently defusing the injection: the
  // run must actually have requeued the killed assignment.
  EXPECT_NE(read_text(log).find("requeued 1 assignments"), std::string::npos)
      << "crash injection never fired — NCB_DIST_KILL_KEY no longer "
         "matches an expanded job key";
  EXPECT_EQ(read_text(out), read_text(reference));
}

TEST(SweepCli, ResumeBridgesInProcessAndDistributedRuns) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string spec = dir.file("tiny.spec");
  write_text(spec, tiny_spec());
  const std::string reference = dir.file("ref.json");
  ASSERT_EQ(run_sweep({"--spec", spec, "--out", reference}), 0);
  const std::string out = dir.file("mixed.json");
  // One job in-process, the rest distributed, then a no-op distributed
  // resume — every leg must land on the same bytes.
  ASSERT_EQ(run_sweep({"--spec", spec, "--out", out, "--max-jobs", "1"}), 0);
  ASSERT_EQ(
      run_sweep({"--spec", spec, "--out", out, "--resume", "--workers", "2"}),
      0);
  EXPECT_EQ(read_text(out), read_text(reference));
  ASSERT_EQ(
      run_sweep({"--spec", spec, "--out", out, "--resume", "--workers", "2"}),
      0);
  EXPECT_EQ(read_text(out), read_text(reference));
}

// The paper-grid acceptance check: the real fig3 spec across 4 workers —
// with one worker SIGKILLed mid-sweep — must reproduce the single-process
// bytes exactly. (~2s: two full fig3 runs.)
TEST(SweepCli, Fig3FourWorkersWithWorkerKillIsByteIdentical) {
  REQUIRE_BINARY();
  const std::string fig3 = std::string(NCB_SPECS_DIR) + "/fig3.sweep";
  if (!fs::exists(fig3)) GTEST_SKIP() << "fig3 spec not found: " << fig3;
  TempDir dir;
  const std::string reference = dir.file("fig3_ref.json");
  ASSERT_EQ(run_sweep({"--spec", fig3, "--out", reference}), 0);
  const std::string out = dir.file("fig3_w4.json");
  const std::string log = dir.file("fig3_w4.log");
  ASSERT_EQ(run_sweep({"--spec", fig3, "--out", out, "--workers", "4"},
                      {{"NCB_DIST_KILL_KEY", "sso:dfl-sso@er,K=100,p=0.3,n=10000"}},
                      log),
            0);
  EXPECT_NE(read_text(log).find("requeued 1 assignments"), std::string::npos)
      << "crash injection never fired for the fig3 key";
  EXPECT_EQ(read_text(out), read_text(reference));
}

/// Starts a --listen coordinator, waits for its --port-file, connects
/// `workers` --worker-connect processes (each with `worker_env`), and
/// waits for all of them. Returns the coordinator's exit code.
int run_tcp_sweep(const TempDir& dir, const std::string& spec,
                  const std::string& out, const std::string& stdout_path,
                  std::size_t workers, const EnvVars& worker_env) {
  const std::string port_file = out + ".port";
  const pid_t coordinator =
      spawn_sweep({"--spec", spec, "--out", out, "--listen", "127.0.0.1:0",
                   "--port-file", port_file},
                  {}, stdout_path);
  EXPECT_GT(coordinator, 0);

  std::string advertised;
  for (int i = 0; i < 2000 && advertised.empty(); ++i) {
    advertised = read_text(port_file);
    if (advertised.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_FALSE(advertised.empty()) << "coordinator never wrote --port-file";
  while (!advertised.empty() && advertised.back() == '\n') {
    advertised.pop_back();
  }

  std::vector<pid_t> pids;
  for (std::size_t i = 0; i < workers; ++i) {
    pids.push_back(spawn_sweep({"--worker-connect", advertised}, worker_env));
  }
  const int code = wait_exit(coordinator);
  for (const pid_t pid : pids) (void)wait_exit(pid);  // 137 when SIGKILLed
  (void)dir;
  return code;
}

TEST(SweepCli, TcpWorkersProduceByteIdenticalOutput) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string spec = dir.file("tiny.spec");
  write_text(spec, tiny_spec());
  const std::string reference = dir.file("ref.json");
  ASSERT_EQ(run_sweep({"--spec", spec, "--out", reference}), 0);

  const std::string out = dir.file("tcp.json");
  ASSERT_EQ(run_tcp_sweep(dir, spec, out, dir.file("tcp.log"), 2, {}), 0);
  EXPECT_EQ(read_text(out), read_text(reference));
}

TEST(SweepCli, TcpWorkerKilledMidSweepRequeuesWithIdenticalBytes) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string spec = dir.file("tiny.spec");
  write_text(spec, tiny_spec());
  const std::string reference = dir.file("ref.json");
  ASSERT_EQ(run_sweep({"--spec", spec, "--out", reference}), 0);

  // Both TCP workers carry the kill key, but the injection fires only on
  // attempt 1 — exactly one dies, and the requeued attempt (attempt 2, on
  // whichever worker is left) must reproduce the reference bytes.
  const std::string out = dir.file("tcp_killed.json");
  const std::string log = dir.file("tcp_killed.log");
  ASSERT_EQ(run_tcp_sweep(
                dir, spec, out, log, 2,
                {{"NCB_DIST_KILL_KEY", "sso:dfl-sso@er,K=30,p=0.3,n=200"}}),
            0);
  EXPECT_NE(read_text(log).find("requeued 1 assignments"), std::string::npos)
      << "crash injection never fired over TCP";
  EXPECT_EQ(read_text(out), read_text(reference));
}

TEST(SweepCli, SigintFlushesCompletedRecordsAndResumeMatches) {
  REQUIRE_BINARY();
  TempDir dir;
  const std::string spec = dir.file("slow.spec");
  write_text(spec, slow_spec());
  const std::string reference = dir.file("ref.json");
  ASSERT_EQ(run_sweep({"--spec", spec, "--out", reference}), 0);
  const std::string expected = read_text(reference);

  const std::string out = dir.file("interrupted.json");
  const pid_t pid = spawn_sweep({"--spec", spec, "--out", out}, {});
  ASSERT_GT(pid, 0);
  // Interrupt as soon as the first record line lands in the checkpoint
  // file — mid-sweep, after the handler is installed.
  for (int i = 0; i < 2000; ++i) {
    if (read_text(out).find("{\"key\":\"") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(pid, SIGINT);
  const int code = wait_exit(pid);
  // 130 when the interrupt landed mid-sweep; 0 if the run won the race.
  EXPECT_TRUE(code == 130 || code == 0) << "exit code " << code;

  // The interrupted file must be valid for --resume (truncation only ever
  // at a record boundary), and completing it must reproduce the reference
  // bytes exactly.
  ASSERT_EQ(run_sweep({"--spec", spec, "--out", out, "--resume"}), 0);
  EXPECT_EQ(read_text(out), expected);
}

}  // namespace
