#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace ncb {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPool, ReusableAcrossPhases) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 20 * (phase + 1));
  }
}

TEST(ThreadPool, NullTaskRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), std::invalid_argument);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    // No wait_idle: destructor must still run all tasks.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelSumCorrect) {
  ThreadPool pool(4);
  std::vector<long> partial(16, 0);
  for (std::size_t w = 0; w < 16; ++w) {
    pool.submit([&partial, w] {
      long total = 0;
      for (long i = 0; i < 100000; ++i) total += static_cast<long>(w);
      partial[w] = total;
    });
  }
  pool.wait_idle();
  long total = 0;
  for (const long p : partial) total += p;
  EXPECT_EQ(total, 100000L * (0 + 15) * 16 / 2);
}

TEST(ThreadPool, ManySmallTasksStress) {
  ThreadPool pool(8);
  std::atomic<long> counter{0};
  for (int i = 0; i < 5000; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 5000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, TaskExceptionPropagatesAtWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i) pool.submit([&completed] { ++completed; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The other tasks still ran; the pool stays usable afterwards.
  EXPECT_EQ(completed.load(), 10);
  pool.submit([&completed] { ++completed; });
  pool.wait_idle();
  EXPECT_EQ(completed.load(), 11);
}

TEST(ThreadPool, OnlyFirstExceptionKept) {
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // Second exception was discarded; next wait is clean.
  pool.wait_idle();
}

TEST(ThreadPool, SubmitBulkRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.submit_bulk(0, 100, [&hits](std::size_t i) { ++hits[i]; });
  pool.wait_idle();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitBulkSubrange) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.submit_bulk(10, 20, [&sum](std::size_t i) { sum += i; });
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, SubmitBulkEmptyRangeIsNoop) {
  ThreadPool pool(1);
  pool.submit_bulk(5, 5, [](std::size_t) { FAIL() << "must not run"; });
  pool.wait_idle();
}

TEST(ThreadPool, SubmitBulkNullTaskThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit_bulk(0, 3, nullptr), std::invalid_argument);
}

TEST(ThreadPool, SubmitBulkExceptionPropagates) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit_bulk(0, 16, [&completed](std::size_t i) {
    if (i == 7) throw std::runtime_error("shard boom");
    ++completed;
  });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 15);
}

}  // namespace
}  // namespace ncb
